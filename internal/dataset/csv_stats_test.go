package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	in := `age,polyuria,class
40,Yes,Positive
55,No,Negative
33,,Positive
`
	d, err := ReadCSV(strings.NewReader(in), "t", CSVOptions{
		LabelColumn:   "class",
		BinaryColumns: []string{"polyuria"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 || d.NumFeatures() != 2 {
		t.Fatalf("shape %dx%d", d.Len(), d.NumFeatures())
	}
	if d.Features[1].Kind != Binary || d.Features[0].Kind != Continuous {
		t.Fatal("schema kinds wrong")
	}
	if d.X[0][0] != 40 || d.X[0][1] != 1 {
		t.Fatalf("row 0 = %v", d.X[0])
	}
	if d.X[1][1] != 0 {
		t.Fatal("No did not parse as 0")
	}
	if !math.IsNaN(d.X[2][1]) {
		t.Fatal("empty cell not NaN")
	}
	if d.Y[0] != 1 || d.Y[1] != 0 || d.Y[2] != 1 {
		t.Fatalf("labels %v", d.Y)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		opt  CSVOptions
	}{
		{"missing label column", "a,b\n1,2\n", CSVOptions{LabelColumn: "class"}},
		{"bad label value", "a,class\n1,maybe\n", CSVOptions{LabelColumn: "class"}},
		{"unparseable cell", "a,class\nxyz,1\n", CSVOptions{LabelColumn: "class"}},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), "t", c.opt); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestReadCSVMissingTokens(t *testing.T) {
	in := "a,class\nNA,1\n5,0\n"
	d, err := ReadCSV(strings.NewReader(in), "t", CSVOptions{
		LabelColumn:   "class",
		MissingTokens: []string{"NA"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(d.X[0][0]) {
		t.Fatal("NA not treated as missing")
	}
}

func TestReadCSVCustomLabels(t *testing.T) {
	in := "a,outcome\n1,sick\n2,healthy\n"
	d, err := ReadCSV(strings.NewReader(in), "t", CSVOptions{
		LabelColumn:    "outcome",
		PositiveLabels: []string{"sick"},
		NegativeLabels: []string{"healthy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Y[0] != 1 || d.Y[1] != 0 {
		t.Fatalf("labels %v", d.Y)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := MustNew("rt",
		[]Feature{{Name: "a", Kind: Continuous}, {Name: "b", Kind: Binary}},
		[][]float64{{1.5, 1}, {math.NaN(), 0}},
		[]int{1, 0},
	)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "rt", CSVOptions{LabelColumn: "label", BinaryColumns: []string{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.NumFeatures() != 2 {
		t.Fatalf("shape %dx%d", back.Len(), back.NumFeatures())
	}
	if back.X[0][0] != 1.5 || back.X[0][1] != 1 {
		t.Fatalf("row 0 = %v", back.X[0])
	}
	if !math.IsNaN(back.X[1][0]) {
		t.Fatal("NaN did not survive round trip")
	}
	if back.Y[0] != 1 || back.Y[1] != 0 {
		t.Fatalf("labels %v", back.Y)
	}
}

func TestSummarize(t *testing.T) {
	d := MustNew("s",
		[]Feature{{Name: "glucose", Kind: Continuous}},
		[][]float64{{100}, {150}, {200}, {80}, {math.NaN()}},
		[]int{0, 1, 1, 0, 1},
	)
	sum := Summarize(d)
	if len(sum) != 1 {
		t.Fatalf("%d summaries", len(sum))
	}
	s := sum[0]
	if s.Name != "glucose" {
		t.Fatalf("name %q", s.Name)
	}
	if s.PosMean != 175 || s.PosMin != 150 || s.PosMax != 200 {
		t.Fatalf("pos stats %+v", s)
	}
	if s.NegMean != 90 || s.NegMin != 80 || s.NegMax != 100 {
		t.Fatalf("neg stats %+v", s)
	}
}

func TestSummarizeEmptyClass(t *testing.T) {
	d := MustNew("s2",
		[]Feature{{Name: "x", Kind: Continuous}},
		[][]float64{{1}, {2}},
		[]int{0, 0},
	)
	s := Summarize(d)[0]
	if !math.IsNaN(s.PosMean) {
		t.Fatal("empty class mean should be NaN")
	}
	if s.NegMean != 1.5 {
		t.Fatalf("neg mean %v", s.NegMean)
	}
}

func TestColumnMeanStd(t *testing.T) {
	d := MustNew("m",
		[]Feature{{Name: "x", Kind: Continuous}},
		[][]float64{{2}, {4}, {math.NaN()}, {6}},
		[]int{0, 0, 1, 1},
	)
	if m := ColumnMean(d, 0); m != 4 {
		t.Fatalf("mean %v", m)
	}
	want := math.Sqrt((4.0 + 0 + 4.0) / 3.0)
	if s := ColumnStd(d, 0); math.Abs(s-want) > 1e-12 {
		t.Fatalf("std %v, want %v", s, want)
	}
}
