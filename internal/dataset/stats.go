package dataset

import "math"

// FeatureSummary holds the per-class statistics of one feature, matching
// the shape of the paper's Table I: mean plus observed range, separately
// for the positive and negative class. NaN cells are excluded.
type FeatureSummary struct {
	Name    string
	PosMean float64
	PosMin  float64
	PosMax  float64
	NegMean float64
	NegMin  float64
	NegMax  float64
}

// Summarize computes a FeatureSummary for every feature. Classes with no
// observed values yield NaN statistics.
func Summarize(d *Dataset) []FeatureSummary {
	out := make([]FeatureSummary, d.NumFeatures())
	for j := range out {
		s := FeatureSummary{Name: d.Features[j].Name}
		s.PosMean, s.PosMin, s.PosMax = classStats(d, j, 1)
		s.NegMean, s.NegMin, s.NegMax = classStats(d, j, 0)
		out[j] = s
	}
	return out
}

func classStats(d *Dataset, j, class int) (mean, min, max float64) {
	var sum float64
	n := 0
	min, max = math.Inf(1), math.Inf(-1)
	for i, row := range d.X {
		if d.Y[i] != class || math.IsNaN(row[j]) {
			continue
		}
		v := row[j]
		sum += v
		n++
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if n == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	return sum / float64(n), min, max
}

// ColumnMean returns the mean of column j over non-missing cells, or NaN if
// the column is entirely missing.
func ColumnMean(d *Dataset, j int) float64 {
	var sum float64
	n := 0
	for _, row := range d.X {
		if !math.IsNaN(row[j]) {
			sum += row[j]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// ColumnStd returns the population standard deviation of column j over
// non-missing cells.
func ColumnStd(d *Dataset, j int) float64 {
	mean := ColumnMean(d, j)
	if math.IsNaN(mean) {
		return math.NaN()
	}
	var ss float64
	n := 0
	for _, row := range d.X {
		if !math.IsNaN(row[j]) {
			diff := row[j] - mean
			ss += diff * diff
			n++
		}
	}
	return math.Sqrt(ss / float64(n))
}
