package dataset

import (
	"testing"

	"hdfe/internal/rng"
)

func balancedDataset(t *testing.T, neg, pos int) *Dataset {
	t.Helper()
	var X [][]float64
	var y []int
	for i := 0; i < neg; i++ {
		X = append(X, []float64{float64(i)})
		y = append(y, 0)
	}
	for i := 0; i < pos; i++ {
		X = append(X, []float64{float64(1000 + i)})
		y = append(y, 1)
	}
	return MustNew("split-test", []Feature{{Name: "x", Kind: Continuous}}, X, y)
}

func TestStratifiedKFoldPartition(t *testing.T) {
	d := balancedDataset(t, 60, 40)
	folds := StratifiedKFold(d, 10, rng.New(1))
	if len(folds) != 10 {
		t.Fatalf("%d folds", len(folds))
	}
	seen := make([]int, d.Len())
	for _, f := range folds {
		if len(f.Train)+len(f.Test) != d.Len() {
			t.Fatalf("fold covers %d rows", len(f.Train)+len(f.Test))
		}
		for _, i := range f.Test {
			seen[i]++
		}
		inTrain := map[int]bool{}
		for _, i := range f.Train {
			inTrain[i] = true
		}
		for _, i := range f.Test {
			if inTrain[i] {
				t.Fatal("row in both train and test")
			}
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("row %d tested %d times", i, c)
		}
	}
}

func TestStratifiedKFoldPreservesBalance(t *testing.T) {
	d := balancedDataset(t, 60, 40)
	folds := StratifiedKFold(d, 10, rng.New(2))
	for fi, f := range folds {
		pos := 0
		for _, i := range f.Test {
			pos += d.Y[i]
		}
		// 40 positives over 10 folds -> exactly 4 per fold.
		if pos != 4 {
			t.Fatalf("fold %d has %d positives in test, want 4", fi, pos)
		}
	}
}

func TestStratifiedKFoldPanics(t *testing.T) {
	d := balancedDataset(t, 5, 3)
	cases := []func(){
		func() { StratifiedKFold(d, 1, rng.New(1)) },
		func() { StratifiedKFold(d, 4, rng.New(1)) }, // class 1 has 3 < 4
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestLeaveOneOut(t *testing.T) {
	folds := LeaveOneOut(5)
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	for i, f := range folds {
		if len(f.Test) != 1 || f.Test[0] != i {
			t.Fatalf("fold %d tests %v", i, f.Test)
		}
		if len(f.Train) != 4 {
			t.Fatalf("fold %d trains on %d", i, len(f.Train))
		}
		for _, j := range f.Train {
			if j == i {
				t.Fatalf("fold %d trains on its own test row", i)
			}
		}
	}
}

func TestStratifiedSplitFractions(t *testing.T) {
	d := balancedDataset(t, 200, 100)
	train, test := StratifiedSplit(d, 0.9, rng.New(3))
	if len(train)+len(test) != 300 {
		t.Fatalf("split sizes %d+%d", len(train), len(test))
	}
	if len(train) != 270 || len(test) != 30 {
		t.Fatalf("90/10 split = %d/%d", len(train), len(test))
	}
	posTest := 0
	for _, i := range test {
		posTest += d.Y[i]
	}
	if posTest != 10 {
		t.Fatalf("test positives = %d, want 10", posTest)
	}
}

func TestStratifiedSplitDisjoint(t *testing.T) {
	d := balancedDataset(t, 30, 20)
	a, b := StratifiedSplit(d, 0.7, rng.New(4))
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, a...), b...) {
		if seen[i] {
			t.Fatalf("row %d appears twice", i)
		}
		seen[i] = true
	}
	if len(seen) != 50 {
		t.Fatalf("covered %d rows", len(seen))
	}
}

func TestStratifiedSplitPanicsOnBadFraction(t *testing.T) {
	d := balancedDataset(t, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	StratifiedSplit(d, 1.5, rng.New(1))
}

func TestTrainValTest(t *testing.T) {
	d := balancedDataset(t, 200, 100)
	train, val, test := TrainValTest(d, 0.7, 0.15, rng.New(5))
	total := len(train) + len(val) + len(test)
	if total != 300 {
		t.Fatalf("covered %d rows", total)
	}
	if len(train) != 210 {
		t.Fatalf("train = %d, want 210", len(train))
	}
	if len(val) != 45 || len(test) != 45 {
		t.Fatalf("val/test = %d/%d, want 45/45", len(val), len(test))
	}
	seen := map[int]bool{}
	for _, idx := range [][]int{train, val, test} {
		for _, i := range idx {
			if seen[i] {
				t.Fatalf("row %d in two splits", i)
			}
			seen[i] = true
		}
	}
}

func TestSplitsDeterministic(t *testing.T) {
	d := balancedDataset(t, 50, 30)
	a1, b1 := StratifiedSplit(d, 0.8, rng.New(7))
	a2, b2 := StratifiedSplit(d, 0.8, rng.New(7))
	if len(a1) != len(a2) || len(b1) != len(b2) {
		t.Fatal("sizes differ")
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same-seed splits differ")
		}
	}
}
