package dataset

import (
	"fmt"

	"hdfe/internal/rng"
)

// Fold is one train/test partition of row indices.
type Fold struct {
	Train []int
	Test  []int
}

// StratifiedKFold partitions the rows into k folds that each preserve the
// overall class balance as closely as possible (the paper's 10-fold CV
// protocol). Rows are shuffled per class with r before assignment, so the
// folds are random but reproducible. It panics if k < 2 or k exceeds the
// size of the smaller class.
func StratifiedKFold(d *Dataset, k int, r *rng.Source) []Fold {
	if k < 2 {
		panic(fmt.Sprintf("dataset: k-fold with k=%d", k))
	}
	byClass := classIndices(d)
	for c, idx := range byClass {
		if len(idx) > 0 && len(idx) < k {
			panic(fmt.Sprintf("dataset: class %d has %d rows, fewer than k=%d", c, len(idx), k))
		}
	}
	assign := make([]int, d.Len()) // row -> fold
	for _, idx := range byClass {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for pos, row := range idx {
			assign[row] = pos % k
		}
	}
	folds := make([]Fold, k)
	for row, f := range assign {
		for fi := range folds {
			if fi == f {
				folds[fi].Test = append(folds[fi].Test, row)
			} else {
				folds[fi].Train = append(folds[fi].Train, row)
			}
		}
	}
	return folds
}

// LeaveOneOut returns n folds, fold i testing on row i and training on all
// others (the paper's Hamming-model validation).
func LeaveOneOut(n int) []Fold {
	folds := make([]Fold, n)
	for i := range folds {
		train := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				train = append(train, j)
			}
		}
		folds[i] = Fold{Train: train, Test: []int{i}}
	}
	return folds
}

// StratifiedSplit splits the rows into two groups with the given fraction
// in the first group, preserving class balance (each class is split
// separately, rounding the first group's share to the nearest integer).
// Used for the paper's 90/10 test protocol.
func StratifiedSplit(d *Dataset, firstFraction float64, r *rng.Source) (first, second []int) {
	if firstFraction < 0 || firstFraction > 1 {
		panic(fmt.Sprintf("dataset: split fraction %v out of [0,1]", firstFraction))
	}
	for _, idx := range classIndices(d) {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		cut := int(firstFraction*float64(len(idx)) + 0.5)
		first = append(first, idx[:cut]...)
		second = append(second, idx[cut:]...)
	}
	return first, second
}

// TrainValTest splits rows into three stratified groups with the given
// fractions (which must sum to ~1). This is the paper's 70/15/15 protocol
// for the sequential neural network.
func TrainValTest(d *Dataset, trainFrac, valFrac float64, r *rng.Source) (train, val, test []int) {
	if trainFrac < 0 || valFrac < 0 || trainFrac+valFrac > 1 {
		panic(fmt.Sprintf("dataset: bad fractions %v/%v", trainFrac, valFrac))
	}
	for _, idx := range classIndices(d) {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		n := len(idx)
		trainCut := int(trainFrac*float64(n) + 0.5)
		valCut := trainCut + int(valFrac*float64(n)+0.5)
		if valCut > n {
			valCut = n
		}
		train = append(train, idx[:trainCut]...)
		val = append(val, idx[trainCut:valCut]...)
		test = append(test, idx[valCut:]...)
	}
	return train, val, test
}

func classIndices(d *Dataset) [2][]int {
	var byClass [2][]int
	for i, label := range d.Y {
		byClass[label] = append(byClass[label], i)
	}
	return byClass
}
