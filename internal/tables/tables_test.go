package tables

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// quickCfg keeps the smoke-test experiments small: low dimensionality,
// few folds/trials, shrunken ensembles. The full-scale run is exercised by
// cmd/hdbench and the repository benchmarks.
func quickCfg() Config {
	return Config{Seed: 1, Dim: 512, Folds: 4, Trials: 2, Quick: true}
}

func TestLoadDatasetsShapes(t *testing.T) {
	ds := LoadDatasets(1)
	if ds.PimaR.Len() != 392 || ds.PimaM.Len() != 768 || ds.Sylhet.Len() != 520 {
		t.Fatalf("dataset sizes %d/%d/%d", ds.PimaR.Len(), ds.PimaM.Len(), ds.Sylhet.Len())
	}
	if len(ds.List()) != 3 {
		t.Fatal("List length")
	}
}

func TestZooHasNineModels(t *testing.T) {
	zoo := Zoo(quickCfg())
	if len(zoo) != 9 {
		t.Fatalf("zoo has %d models, want 9", len(zoo))
	}
	want := []string{"Random Forest", "KNN", "Decision Tree", "XGBoost",
		"CatBoost", "SGD", "Logistic Regression", "SVC", "LGBM"}
	for i, m := range zoo {
		if m.Name != want[i] {
			t.Fatalf("zoo[%d] = %q, want %q", i, m.Name, want[i])
		}
		if m.New(1) == nil {
			t.Fatalf("%s factory returned nil", m.Name)
		}
	}
}

func TestTable1(t *testing.T) {
	res := Table1(quickCfg())
	if len(res.Summaries) != 8 {
		t.Fatalf("%d summaries, want 8", len(res.Summaries))
	}
	var buf bytes.Buffer
	RenderTable1(&buf, res)
	out := buf.String()
	for _, name := range []string{"Glucose", "BMI", "Age", "DPF"} {
		if !strings.Contains(out, name) {
			t.Fatalf("rendered Table I missing %s:\n%s", name, out)
		}
	}
}

func TestTable2Quick(t *testing.T) {
	res, err := Table2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DatasetNames) != 3 || len(res.Hamming) != 3 ||
		len(res.NNFeatures) != 3 || len(res.NNHyper) != 3 {
		t.Fatalf("result shape %+v", res)
	}
	for i, name := range res.DatasetNames {
		for _, v := range []float64{res.Hamming[i], res.NNFeatures[i], res.NNHyper[i]} {
			if math.IsNaN(v) || v < 0.3 || v > 1 {
				t.Fatalf("%s: implausible accuracy %v", name, v)
			}
		}
	}
	// Shape check even at quick scale: Sylhet Hamming is far stronger
	// than Pima R Hamming (paper: 95.9% vs 70.7%).
	if res.Hamming[2] <= res.Hamming[0] {
		t.Fatalf("Sylhet Hamming %v should exceed Pima R %v", res.Hamming[2], res.Hamming[0])
	}
	var buf bytes.Buffer
	RenderTable2(&buf, res)
	if !strings.Contains(buf.String(), "Sequential NN") {
		t.Fatal("render missing NN row")
	}
}

func TestTable3Quick(t *testing.T) {
	res, err := Table3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ModelNames) != 9 || len(res.DatasetNames) != 3 {
		t.Fatalf("shape %dx%d", len(res.ModelNames), len(res.DatasetNames))
	}
	for mi, model := range res.ModelNames {
		if len(res.Cells[mi]) != 3 {
			t.Fatalf("%s has %d cells", model, len(res.Cells[mi]))
		}
		for di, cell := range res.Cells[mi] {
			for _, v := range []float64{cell.Features, cell.Hyper} {
				if math.IsNaN(v) || v < 0.3 || v > 1 {
					t.Fatalf("%s on %s: implausible score %v", model, res.DatasetNames[di], v)
				}
			}
		}
	}
	var buf bytes.Buffer
	RenderTable3(&buf, res)
	if !strings.Contains(buf.String(), "Random Forest") {
		t.Fatal("render missing model row")
	}
}

func TestTable4And5Quick(t *testing.T) {
	t4, err := Table4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if t4.Dataset != "Pima M" || len(t4.Rows) != 9 || t4.Hamming != nil {
		t.Fatalf("Table IV shape: %s, %d rows, hamming=%v", t4.Dataset, len(t4.Rows), t4.Hamming)
	}
	t5, err := Table5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if t5.Dataset != "Syhlet" || len(t5.Rows) != 9 || t5.Hamming == nil {
		t.Fatalf("Table V shape: %s, %d rows, hamming=%v", t5.Dataset, len(t5.Rows), t5.Hamming)
	}
	// Sylhet accuracies should dominate Pima M broadly (paper shape).
	var meanPima, meanSylhet float64
	for i := range t4.Rows {
		meanPima += t4.Rows[i].Features.Accuracy + t4.Rows[i].Hyper.Accuracy
		meanSylhet += t5.Rows[i].Features.Accuracy + t5.Rows[i].Hyper.Accuracy
	}
	if meanSylhet <= meanPima {
		t.Fatalf("mean Sylhet accuracy %v should exceed Pima M %v", meanSylhet/18, meanPima/18)
	}
	var buf bytes.Buffer
	RenderTestMetrics(&buf, "Table V", t5)
	if !strings.Contains(buf.String(), "Hamming (LOO)") {
		t.Fatal("Table V render missing Hamming row")
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.normalized()
	if c.Dim != 10000 || c.Folds != 10 || c.Trials != 10 {
		t.Fatalf("defaults %+v", c)
	}
}

func TestRenderPctHelpers(t *testing.T) {
	if pct(0.5) != "50.0%" || pct(math.NaN()) != "-" {
		t.Fatal("pct wrong")
	}
	if ratio(0.1234) != "0.123" || ratio(math.NaN()) != "-" {
		t.Fatal("ratio wrong")
	}
}
