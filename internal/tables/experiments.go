package tables

import (
	"fmt"

	"hdfe/internal/core"
	"hdfe/internal/dataset"
	"hdfe/internal/eval"
	"hdfe/internal/metrics"
	"hdfe/internal/ml"
	"hdfe/internal/ml/nn"
	"hdfe/internal/rng"
)

// hdOptions derives the encoding options for a dataset from the config;
// each dataset gets its own deterministic encoding seed.
func hdOptions(cfg Config, datasetIdx int) core.Options {
	return core.Options{Dim: cfg.Dim, Seed: cfg.Seed*1000003 + uint64(datasetIdx)}
}

// nnConfig builds the paper's Sequential NN configuration.
func nnConfig(cfg Config, seed uint64) nn.Config {
	c := nn.Config{Hidden: []int{32, 32}, MaxEpochs: 1000, Patience: 20, Seed: seed}
	if cfg.Quick {
		c.MaxEpochs = 60
		c.Patience = 10
	}
	return c
}

// ---------------------------------------------------------------- Table I

// Table1Result carries the per-class feature distribution of Pima R.
type Table1Result struct {
	Dataset   string
	Summaries []dataset.FeatureSummary
}

// Table1 regenerates the paper's Table I from the Pima R dataset.
func Table1(cfg Config) Table1Result {
	cfg = cfg.normalized()
	d := LoadDatasets(cfg.Seed).PimaR
	return Table1Result{Dataset: d.Name, Summaries: dataset.Summarize(d)}
}

// --------------------------------------------------------------- Table II

// Table2Result holds testing accuracy for the Hamming model (leave-one-out)
// and the Sequential NN (70/15/15, repeated trials) on each dataset, with
// the NN trained on raw features and on hypervectors.
type Table2Result struct {
	DatasetNames []string
	Hamming      []float64 // per dataset
	NNFeatures   []float64
	NNHyper      []float64
}

// Table2 regenerates the paper's Table II.
func Table2(cfg Config) (*Table2Result, error) {
	cfg = cfg.normalized()
	ds := LoadDatasets(cfg.Seed)
	res := &Table2Result{}
	for di, d := range ds.List() {
		res.DatasetNames = append(res.DatasetNames, d.Name)
		opts := hdOptions(cfg, di)

		ham, err := core.HammingLOO(d, opts)
		if err != nil {
			return nil, fmt.Errorf("tables: hamming on %s: %w", d.Name, err)
		}
		res.Hamming = append(res.Hamming, ham.Accuracy())

		_, hvFloats, err := core.EncodeDataset(d, opts)
		if err != nil {
			return nil, fmt.Errorf("tables: encoding %s: %w", d.Name, err)
		}
		featAcc, err := repeatedNN(cfg, d, d.X, uint64(di)*17+1)
		if err != nil {
			return nil, fmt.Errorf("tables: NN(features) on %s: %w", d.Name, err)
		}
		hvAcc, err := repeatedNN(cfg, d, hvFloats, uint64(di)*17+2)
		if err != nil {
			return nil, fmt.Errorf("tables: NN(hypervectors) on %s: %w", d.Name, err)
		}
		res.NNFeatures = append(res.NNFeatures, featAcc)
		res.NNHyper = append(res.NNHyper, hvAcc)
	}
	return res, nil
}

// repeatedNN runs the paper's NN protocol: Trials times, split 70/15/15,
// train with validation-monitored early stopping, record test accuracy.
// Trials run in parallel.
func repeatedNN(cfg Config, d *dataset.Dataset, X [][]float64, salt uint64) (float64, error) {
	splitSrc := rng.New(cfg.Seed ^ (salt * 0x9e3779b97f4a7c15))
	type trialSplit struct{ train, val, test []int }
	splits := make([]trialSplit, cfg.Trials)
	seeds := make([]uint64, cfg.Trials)
	for t := range splits {
		tr, va, te := dataset.TrainValTest(d, 0.70, 0.15, splitSrc.Split())
		splits[t] = trialSplit{tr, va, te}
		seeds[t] = splitSrc.Uint64()
	}
	accs := make([]float64, cfg.Trials)
	errs := make([]error, cfg.Trials)
	done := make(chan int, cfg.Trials)
	for t := 0; t < cfg.Trials; t++ {
		go func(t int) {
			defer func() { done <- t }()
			s := splits[t]
			net := nn.New(nnConfig(cfg, seeds[t]))
			trX, trY := eval.Select(X, d.Y, s.train)
			vaX, vaY := eval.Select(X, d.Y, s.val)
			teX, teY := eval.Select(X, d.Y, s.test)
			if err := net.FitValidated(trX, trY, vaX, vaY); err != nil {
				errs[t] = err
				return
			}
			accs[t] = metrics.Accuracy(teY, net.Predict(teX))
		}(t)
	}
	for t := 0; t < cfg.Trials; t++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return ml.Mean(accs), nil
}

// -------------------------------------------------------------- Table III

// Table3Cell is one model × dataset entry: CV accuracy on raw features and
// on hypervectors.
type Table3Cell struct {
	Features float64
	Hyper    float64
}

// Table3Result is indexed [model][dataset].
type Table3Result struct {
	ModelNames   []string
	DatasetNames []string
	Cells        [][]Table3Cell
}

// Table3 regenerates the paper's Table III: stratified k-fold
// cross-validation accuracy for every zoo model on every dataset, with raw
// features and with hypervectors.
func Table3(cfg Config) (*Table3Result, error) {
	cfg = cfg.normalized()
	ds := LoadDatasets(cfg.Seed)
	zoo := Zoo(cfg)
	res := &Table3Result{Cells: make([][]Table3Cell, len(zoo))}
	for _, m := range zoo {
		res.ModelNames = append(res.ModelNames, m.Name)
	}
	for di, d := range ds.List() {
		res.DatasetNames = append(res.DatasetNames, d.Name)
		_, hvFloats, err := core.EncodeDataset(d, hdOptions(cfg, di))
		if err != nil {
			return nil, fmt.Errorf("tables: encoding %s: %w", d.Name, err)
		}
		folds := dataset.StratifiedKFold(d, cfg.Folds, rng.New(cfg.Seed+uint64(di)*31))
		for mi, m := range zoo {
			featScore, err := cvScore(m, d.Y, d.X, folds, cfg.Seed+uint64(mi))
			if err != nil {
				return nil, fmt.Errorf("tables: %s(features) on %s: %w", m.Name, d.Name, err)
			}
			hvScore, err := cvScore(m, d.Y, hvFloats, folds, cfg.Seed+uint64(mi)+500)
			if err != nil {
				return nil, fmt.Errorf("tables: %s(hypervectors) on %s: %w", m.Name, d.Name, err)
			}
			res.Cells[mi] = append(res.Cells[mi], Table3Cell{Features: featScore, Hyper: hvScore})
		}
	}
	return res, nil
}

func cvScore(m ModelSpec, y []int, X [][]float64, folds []dataset.Fold, seed uint64) (float64, error) {
	seedSrc := rng.New(seed)
	factory := func() ml.Classifier { return m.New(seedSrc.Uint64()) }
	results, err := eval.CrossValidate(factory, X, y, folds)
	if err != nil {
		return 0, err
	}
	return eval.CVScore(results), nil
}

// ----------------------------------------------------------- Tables IV, V

// MetricsRow is one model's Table IV/V row: the five reported metrics for
// the feature-based and hypervector-based variant.
type MetricsRow struct {
	Model    string
	Features metrics.Report
	Hyper    metrics.Report
}

// TestMetricsResult holds a Table IV or Table V.
type TestMetricsResult struct {
	Dataset string
	Rows    []MetricsRow
	// Hamming is the leave-one-out reference row (Table V only; nil for
	// Table IV).
	Hamming *metrics.Report
}

// Table4 regenerates the paper's Table IV: test metrics of every zoo model
// on Pima M with a 90/10 stratified split.
func Table4(cfg Config) (*TestMetricsResult, error) {
	cfg = cfg.normalized()
	ds := LoadDatasets(cfg.Seed)
	return testMetrics(cfg, ds.PimaM, 1, false)
}

// Table5 regenerates the paper's Table V: test metrics on Syhlet plus the
// Hamming leave-one-out reference row.
func Table5(cfg Config) (*TestMetricsResult, error) {
	cfg = cfg.normalized()
	ds := LoadDatasets(cfg.Seed)
	return testMetrics(cfg, ds.Sylhet, 2, true)
}

func testMetrics(cfg Config, d *dataset.Dataset, datasetIdx int, withHamming bool) (*TestMetricsResult, error) {
	opts := hdOptions(cfg, datasetIdx)
	_, hvFloats, err := core.EncodeDataset(d, opts)
	if err != nil {
		return nil, fmt.Errorf("tables: encoding %s: %w", d.Name, err)
	}
	train, test := dataset.StratifiedSplit(d, 0.9, rng.New(cfg.Seed+uint64(datasetIdx)*77))
	res := &TestMetricsResult{Dataset: d.Name}
	for mi, m := range Zoo(cfg) {
		featConf, err := eval.TrainTest(factoryFor(m, cfg.Seed+uint64(mi)), d.X, d.Y, train, test)
		if err != nil {
			return nil, fmt.Errorf("tables: %s(features) on %s: %w", m.Name, d.Name, err)
		}
		hvConf, err := eval.TrainTest(factoryFor(m, cfg.Seed+uint64(mi)+900), hvFloats, d.Y, train, test)
		if err != nil {
			return nil, fmt.Errorf("tables: %s(hypervectors) on %s: %w", m.Name, d.Name, err)
		}
		res.Rows = append(res.Rows, MetricsRow{
			Model:    m.Name,
			Features: featConf.Summarize(),
			Hyper:    hvConf.Summarize(),
		})
	}
	if withHamming {
		ham, err := core.HammingLOO(d, opts)
		if err != nil {
			return nil, fmt.Errorf("tables: hamming on %s: %w", d.Name, err)
		}
		report := ham.Summarize()
		res.Hamming = &report
	}
	return res, nil
}

func factoryFor(m ModelSpec, seed uint64) ml.Factory {
	src := rng.New(seed)
	return func() ml.Classifier { return m.New(src.Uint64()) }
}
