package tables

import (
	"fmt"
	"io"
	"text/tabwriter"

	"hdfe/internal/core"
	"hdfe/internal/dataset"
	"hdfe/internal/eval"
	"hdfe/internal/metrics"
	"hdfe/internal/ml"
	"hdfe/internal/rng"
)

// LearningCurveResult quantifies the paper's §III observation that "when
// data is scarce, our approach has the largest positive impact": test
// accuracy of one model trained on growing fractions of the training set,
// on raw features vs hypervectors. The hypervector advantage should be
// widest at small sizes and shrink as data grows.
type LearningCurveResult struct {
	Dataset  string
	Model    string
	Sizes    []int     // absolute training-set sizes
	Features []float64 // mean test accuracy per size
	Hyper    []float64
}

// LearningCurve evaluates the named zoo model (default "SGD") on the
// Pima M dataset across training fractions {0.1 ... 1.0} of an 80%
// training pool, with a fixed 20% stratified test set, averaging Repeats
// resamples per point.
func LearningCurve(cfg Config, modelName string, repeats int) (*LearningCurveResult, error) {
	cfg = cfg.normalized()
	if modelName == "" {
		modelName = "SGD"
	}
	if repeats <= 0 {
		repeats = 5
	}
	var spec *ModelSpec
	for _, m := range Zoo(cfg) {
		if m.Name == modelName {
			spec = &m
			break
		}
	}
	if spec == nil {
		return nil, fmt.Errorf("tables: unknown model %q", modelName)
	}

	d := LoadDatasets(cfg.Seed).PimaM
	_, hvFloats, err := core.EncodeDataset(d, hdOptions(cfg, 1))
	if err != nil {
		return nil, err
	}
	res := &LearningCurveResult{Dataset: d.Name, Model: modelName}

	src := rng.New(cfg.Seed + 99)
	trainPool, test := dataset.StratifiedSplit(d, 0.8, src)
	fractions := []float64{0.1, 0.2, 0.35, 0.5, 0.75, 1.0}
	if cfg.Quick {
		fractions = []float64{0.2, 0.5, 1.0}
	}
	for _, frac := range fractions {
		size := int(frac * float64(len(trainPool)))
		if size < 10 {
			size = 10
		}
		res.Sizes = append(res.Sizes, size)
		var featSum, hvSum float64
		for rep := 0; rep < repeats; rep++ {
			repSrc := src.Split()
			sample := append([]int(nil), trainPool...)
			repSrc.Shuffle(len(sample), func(i, j int) { sample[i], sample[j] = sample[j], sample[i] })
			train := sample[:size]
			featAcc, err := curvePoint(spec.New(repSrc.Uint64()), d.X, d.Y, train, test)
			if err != nil {
				return nil, err
			}
			hvAcc, err := curvePoint(spec.New(repSrc.Uint64()), hvFloats, d.Y, train, test)
			if err != nil {
				return nil, err
			}
			featSum += featAcc
			hvSum += hvAcc
		}
		res.Features = append(res.Features, featSum/float64(repeats))
		res.Hyper = append(res.Hyper, hvSum/float64(repeats))
	}
	return res, nil
}

func curvePoint(clf ml.Classifier, X [][]float64, y []int, train, test []int) (float64, error) {
	trX, trY := eval.Select(X, y, train)
	teX, teY := eval.Select(X, y, test)
	if err := clf.Fit(trX, trY); err != nil {
		return 0, err
	}
	return metrics.Accuracy(teY, clf.Predict(teX)), nil
}

// RenderLearningCurve prints the curve with the per-size hypervector gap.
func RenderLearningCurve(w io.Writer, res *LearningCurveResult) {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Learning curve — %s on %s\n", res.Model, res.Dataset)
	fmt.Fprintln(tw, "Train size\tFeatures\tHypervectors\tHV gap")
	for i, size := range res.Sizes {
		gap := res.Hyper[i] - res.Features[i]
		fmt.Fprintf(tw, "%d\t%s\t%s\t%+.1f pts\n", size, pct(res.Features[i]), pct(res.Hyper[i]), 100*gap)
	}
	tw.Flush()
}
