package tables

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestLearningCurveQuick(t *testing.T) {
	cfg := quickCfg()
	res, err := LearningCurve(cfg, "SGD", 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "SGD" || res.Dataset != "Pima M" {
		t.Fatalf("labels %s/%s", res.Model, res.Dataset)
	}
	if len(res.Sizes) != 3 || len(res.Features) != 3 || len(res.Hyper) != 3 {
		t.Fatalf("quick curve has %d points", len(res.Sizes))
	}
	for i := 1; i < len(res.Sizes); i++ {
		if res.Sizes[i] <= res.Sizes[i-1] {
			t.Fatal("sizes not increasing")
		}
	}
	for i := range res.Sizes {
		for _, v := range []float64{res.Features[i], res.Hyper[i]} {
			if math.IsNaN(v) || v < 0.2 || v > 1 {
				t.Fatalf("implausible accuracy %v", v)
			}
		}
	}
	var buf bytes.Buffer
	RenderLearningCurve(&buf, res)
	if !strings.Contains(buf.String(), "HV gap") {
		t.Fatal("render missing gap column")
	}
}

func TestLearningCurveUnknownModel(t *testing.T) {
	if _, err := LearningCurve(quickCfg(), "NotAModel", 1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestLearningCurveDefaults(t *testing.T) {
	// Empty model name and non-positive repeats fall back to defaults.
	res, err := LearningCurve(quickCfg(), "", -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "SGD" {
		t.Fatalf("default model %s", res.Model)
	}
}
