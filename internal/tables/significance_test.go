package tables

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSignificanceQuick(t *testing.T) {
	res, err := Significance(quickCfg(), "pima-m")
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != "Pima M" || len(res.Rows) != 9 {
		t.Fatalf("shape %s/%d", res.Dataset, len(res.Rows))
	}
	for _, r := range res.Rows {
		if math.IsNaN(r.PValue) || r.PValue < 0 || r.PValue > 1 {
			t.Fatalf("%s: p-value %v", r.Model, r.PValue)
		}
		if r.FeatAcc < 0.3 || r.HyperAcc < 0.3 {
			t.Fatalf("%s: implausible accuracies %v/%v", r.Model, r.FeatAcc, r.HyperAcc)
		}
		if r.Significant != (r.PValue < 0.05) {
			t.Fatalf("%s: Significant flag inconsistent", r.Model)
		}
	}
	var buf bytes.Buffer
	RenderSignificance(&buf, res)
	if !strings.Contains(buf.String(), "p-value") {
		t.Fatal("render missing p-value column")
	}
}

func TestSignificanceDatasetSelection(t *testing.T) {
	if _, err := Significance(quickCfg(), "nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	res, err := Significance(quickCfg(), "sylhet")
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != "Syhlet" {
		t.Fatalf("dataset %s", res.Dataset)
	}
}
