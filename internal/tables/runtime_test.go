package tables

import (
	"bytes"
	"strings"
	"testing"
)

func TestRuntimeQuick(t *testing.T) {
	res, err := Runtime(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Features <= 0 || r.Hyper <= 0 {
			t.Fatalf("%s: non-positive timing", r.Model)
		}
	}
	if res.NNEpochFeatures <= 0 || res.NNEpochHyper <= 0 {
		t.Fatal("NN epoch timings missing")
	}
	// The paper's direction even at quick scale: boosting slows down on
	// hypervectors far more than the forest does.
	var boostRatio, forestRatio float64
	for _, r := range res.Rows {
		switch r.Model {
		case "LGBM":
			boostRatio = r.Ratio()
		case "Random Forest":
			forestRatio = r.Ratio()
		}
	}
	if boostRatio <= forestRatio {
		t.Fatalf("LGBM slowdown %.1fx not above forest %.1fx", boostRatio, forestRatio)
	}
	var buf bytes.Buffer
	RenderRuntime(&buf, res)
	if !strings.Contains(buf.String(), "Slowdown") {
		t.Fatal("render missing slowdown column")
	}
}

func TestRuntimeRowRatio(t *testing.T) {
	r := RuntimeRow{Features: 100, Hyper: 1000}
	if r.Ratio() != 10 {
		t.Fatalf("ratio %v", r.Ratio())
	}
	if (RuntimeRow{}).Ratio() != 0 {
		t.Fatal("zero-feature ratio")
	}
}
