package tables

import (
	"bytes"
	"strings"
	"testing"
)

func TestRuntimeQuick(t *testing.T) {
	res, err := Runtime(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Features <= 0 || r.Hyper <= 0 {
			t.Fatalf("%s: non-positive timing", r.Model)
		}
	}
	if res.NNEpochFeatures <= 0 || res.NNEpochHyper <= 0 {
		t.Fatal("NN epoch timings missing")
	}
	// The paper's direction even at quick scale: boosting slows down on
	// hypervectors far more than the forest does.
	var boostRatio, forestRatio float64
	for _, r := range res.Rows {
		switch r.Model {
		case "LGBM":
			boostRatio = r.Ratio()
		case "Random Forest":
			forestRatio = r.Ratio()
		}
	}
	if boostRatio <= forestRatio {
		t.Fatalf("LGBM slowdown %.1fx not above forest %.1fx", boostRatio, forestRatio)
	}
	if res.Encode.Records == 0 || res.Encode.IntoPerRec <= 0 || res.Encode.LegacyPerRec <= 0 {
		t.Fatalf("encode-path stats missing: %+v", res.Encode)
	}
	// The Into path recycles destination vectors and per-worker scratch;
	// the legacy path allocates at least one hypervector per record.
	if res.Encode.IntoAllocsRec >= res.Encode.LegacyAllocsRec {
		t.Fatalf("Into path allocs/record %.2f not below legacy %.2f",
			res.Encode.IntoAllocsRec, res.Encode.LegacyAllocsRec)
	}
	// Serving stage split: both stages measured, shares sum to one.
	if res.Stages.Records == 0 || res.Stages.EncodePerRec <= 0 || res.Stages.DistancePerRec <= 0 {
		t.Fatalf("stage split missing: %+v", res.Stages)
	}
	if sh := res.Stages.EncodeShare(); sh <= 0 || sh >= 1 {
		t.Fatalf("encode share %v outside (0,1)", sh)
	}
	var buf bytes.Buffer
	RenderRuntime(&buf, res)
	if !strings.Contains(buf.String(), "Slowdown") {
		t.Fatal("render missing slowdown column")
	}
	if !strings.Contains(buf.String(), "Encode path") {
		t.Fatal("render missing encode-path section")
	}
	if !strings.Contains(buf.String(), "Serving stage split") {
		t.Fatal("render missing serving stage split section")
	}
}

func TestStageSplitEncodeShare(t *testing.T) {
	s := StageSplitStats{EncodePerRec: 300, DistancePerRec: 100}
	if s.EncodeShare() != 0.75 {
		t.Fatalf("share %v", s.EncodeShare())
	}
	if (StageSplitStats{}).EncodeShare() != 0 {
		t.Fatal("zero split share")
	}
}

func TestRuntimeRowRatio(t *testing.T) {
	r := RuntimeRow{Features: 100, Hyper: 1000}
	if r.Ratio() != 10 {
		t.Fatalf("ratio %v", r.Ratio())
	}
	if (RuntimeRow{}).Ratio() != 0 {
		t.Fatal("zero-feature ratio")
	}
}
