package tables

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestAblationsQuick(t *testing.T) {
	cfg := quickCfg()
	res, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := DatasetNames(cfg)
	if len(names) != 3 {
		t.Fatalf("%d dataset names", len(names))
	}
	if len(res.Dims) != 3 {
		t.Fatalf("quick dims = %v", res.Dims)
	}
	for _, name := range names {
		if len(res.DimAccuracy[name]) != len(res.Dims) {
			t.Fatalf("%s: %d dim accuracies", name, len(res.DimAccuracy[name]))
		}
		for _, grids := range []map[string][2]float64{res.ModeAccuracy, res.TieAccuracy, res.NNvsProto} {
			pair := grids[name]
			for _, v := range pair {
				if math.IsNaN(v) || v < 0.3 || v > 1 {
					t.Fatalf("%s: implausible ablation accuracy %v", name, v)
				}
			}
		}
	}
	var buf bytes.Buffer
	RenderAblations(&buf, res, names)
	out := buf.String()
	for _, marker := range []string{"Ablation A", "Ablation B", "Ablation C", "Ablation D", "Prototype"} {
		if !strings.Contains(out, marker) {
			t.Fatalf("render missing %q:\n%s", marker, out)
		}
	}
}

func TestDimSweepAccuracyGrowsThenSaturates(t *testing.T) {
	// Larger D should never be catastrophically worse: the highest-D
	// accuracy must be within a few points of the best.
	cfg := quickCfg()
	res, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, accs := range res.DimAccuracy {
		best := 0.0
		for _, a := range accs {
			if a > best {
				best = a
			}
		}
		if last := accs[len(accs)-1]; last < best-0.08 {
			t.Fatalf("%s: top dimensionality accuracy %v far below best %v", name, last, best)
		}
	}
}
