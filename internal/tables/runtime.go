package tables

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"hdfe/internal/core"
	"hdfe/internal/hv"
	"hdfe/internal/ml/nn"
	"hdfe/internal/obs"
)

// RuntimeRow is one model's fit-time comparison between raw features and
// hypervector inputs.
type RuntimeRow struct {
	Model    string
	Features time.Duration
	Hyper    time.Duration
}

// Ratio returns hypervector time over feature time.
func (r RuntimeRow) Ratio() float64 {
	if r.Features <= 0 {
		return 0
	}
	return float64(r.Hyper) / float64(r.Features)
}

// RuntimeResult reproduces the paper's §III runtime paragraph as a table:
// "LGBM, XGBoost and CatBoost see a major increase in computing time when
// using hypervectors (over 10x). We didn't observe a significant
// performance difference for the remaining models", plus the NN epoch-time
// comparison.
type RuntimeResult struct {
	Dataset string
	Rows    []RuntimeRow
	// NNEpochFeatures / NNEpochHyper time one training epoch of the
	// sequential network on each representation.
	NNEpochFeatures time.Duration
	NNEpochHyper    time.Duration
	// Encode compares the legacy value-returning encode path against the
	// destination-passing (Into) path on the same dataset.
	Encode EncodePathStats
	// Stages splits the serving path's per-record cost into hypervector
	// encoding vs Hamming-distance scoring, measured through the
	// core.StageObserver seam (the same split hdserve exports at
	// /metrics), so BENCH trajectories can attribute a regression to a
	// stage instead of just "scoring got slower".
	Stages StageSplitStats
}

// StageSplitStats is the per-record encode/distance breakdown of
// Deployment scoring.
type StageSplitStats struct {
	Records        int           `json:"records"`
	EncodePerRec   time.Duration `json:"encode_ns_per_record"`
	DistancePerRec time.Duration `json:"distance_ns_per_record"`
}

// EncodeShare returns encode time as a fraction of total scoring time.
func (s StageSplitStats) EncodeShare() float64 {
	total := s.EncodePerRec + s.DistancePerRec
	if total <= 0 {
		return 0
	}
	return float64(s.EncodePerRec) / float64(total)
}

// EncodePathStats reports per-record cost of batch encoding: the legacy
// path allocates a fresh hypervector per record, the Into path reuses
// caller-owned storage and per-worker scratch.
type EncodePathStats struct {
	Records         int
	LegacyPerRec    time.Duration
	IntoPerRec      time.Duration
	LegacyAllocsRec float64
	IntoAllocsRec   float64
}

// measureEncodePath times fn over passes and reports mean wall-clock and
// heap allocations per call (ReadMemStats deltas; single-shot precision,
// same spirit as the rest of this driver — the repo benchmarks give the
// statistically robust numbers).
func measureEncodePath(passes int, fn func()) (time.Duration, float64) {
	fn() // warm pools and the scheduler before measuring
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for p := 0; p < passes; p++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed / time.Duration(passes),
		float64(after.Mallocs-before.Mallocs) / float64(passes)
}

// Runtime measures wall-clock fit time of every zoo model on Pima R with
// raw features and with hypervectors, plus single-epoch NN timings.
// Measurements are single-shot (the repository benchmarks give
// statistically robust numbers; this driver gives the table shape).
func Runtime(cfg Config) (*RuntimeResult, error) {
	cfg = cfg.normalized()
	d := LoadDatasets(cfg.Seed).PimaR
	_, hvFloats, err := core.EncodeDataset(d, hdOptions(cfg, 0))
	if err != nil {
		return nil, err
	}
	res := &RuntimeResult{Dataset: d.Name}
	for mi, m := range Zoo(cfg) {
		clfFeat := m.New(cfg.Seed + uint64(mi))
		start := time.Now()
		if err := clfFeat.Fit(d.X, d.Y); err != nil {
			return nil, fmt.Errorf("tables: runtime %s(features): %w", m.Name, err)
		}
		featTime := time.Since(start)

		clfHyper := m.New(cfg.Seed + uint64(mi))
		start = time.Now()
		if err := clfHyper.Fit(hvFloats, d.Y); err != nil {
			return nil, fmt.Errorf("tables: runtime %s(hypervectors): %w", m.Name, err)
		}
		res.Rows = append(res.Rows, RuntimeRow{
			Model:    m.Name,
			Features: featTime,
			Hyper:    time.Since(start),
		})
	}

	epoch := func(X [][]float64) (time.Duration, error) {
		net := nn.New(nn.Config{Hidden: []int{32, 32}, MaxEpochs: 1, Patience: 1000, Seed: 1})
		start := time.Now()
		if err := net.Fit(X, d.Y); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	if res.NNEpochFeatures, err = epoch(d.X); err != nil {
		return nil, err
	}
	if res.NNEpochHyper, err = epoch(hvFloats); err != nil {
		return nil, err
	}

	// Encode-path comparison: legacy per-record allocation vs recycled
	// destination vectors with per-worker scratch.
	ext := core.NewExtractor(hdOptions(cfg, 0))
	if err := ext.FitDataset(d); err != nil {
		return nil, err
	}
	const passes = 10
	n := len(d.X)
	legacyTime, legacyAllocs := measureEncodePath(passes, func() {
		ext.Transform(d.X)
	})
	dst := make([]hv.Vector, n)
	intoTime, intoAllocs := measureEncodePath(passes, func() {
		ext.TransformInto(d.X, dst)
	})
	res.Encode = EncodePathStats{
		Records:         n,
		LegacyPerRec:    legacyTime / time.Duration(n),
		IntoPerRec:      intoTime / time.Duration(n),
		LegacyAllocsRec: legacyAllocs / float64(n),
		IntoAllocsRec:   intoAllocs / float64(n),
	}

	// Serving-path stage split: score the dataset through the observed
	// Deployment path and attribute per-record cost to encode vs distance.
	dep, err := core.BuildDeployment(core.SpecsFor(d.Features), d.X, d.Y, hdOptions(cfg, 0))
	if err != nil {
		return nil, err
	}
	var acc obs.StageAccum
	scores := make([]float64, n)
	dep.ScoreBatchIntoObserved(d.X, scores, &acc) // warm pools before measuring
	acc.Reset()
	for p := 0; p < passes; p++ {
		dep.ScoreBatchIntoObserved(d.X, scores, &acc)
	}
	encTotal, distTotal, records := acc.Totals()
	if records > 0 {
		res.Stages = StageSplitStats{
			Records:        n,
			EncodePerRec:   encTotal / time.Duration(records),
			DistancePerRec: distTotal / time.Duration(records),
		}
	}
	return res, nil
}

// RenderRuntime prints the fit-time table.
func RenderRuntime(w io.Writer, res *RuntimeResult) {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Runtime — model fit time on %s (features vs hypervectors)\n", res.Dataset)
	fmt.Fprintln(tw, "Model\tFeatures\tHypervectors\tSlowdown")
	for _, r := range res.Rows {
		fmt.Fprintf(tw, "%s\t%v\t%v\t%.1fx\n",
			r.Model, r.Features.Round(time.Millisecond), r.Hyper.Round(time.Millisecond), r.Ratio())
	}
	fmt.Fprintf(tw, "NN (one epoch)\t%v\t%v\t%.1fx\n",
		res.NNEpochFeatures.Round(time.Millisecond), res.NNEpochHyper.Round(time.Millisecond),
		float64(res.NNEpochHyper)/float64(res.NNEpochFeatures))
	tw.Flush()

	e := res.Encode
	fmt.Fprintf(w, "\nEncode path — batch encoding of %d records (per record)\n", e.Records)
	fmt.Fprintf(w, "  legacy (alloc per record): %v, %.1f allocs\n", e.LegacyPerRec, e.LegacyAllocsRec)
	fmt.Fprintf(w, "  Into   (recycled buffers): %v, %.2f allocs\n", e.IntoPerRec, e.IntoAllocsRec)

	st := res.Stages
	fmt.Fprintf(w, "\nServing stage split — Deployment scoring of %d records (per record)\n", st.Records)
	fmt.Fprintf(w, "  encode:   %v (%.0f%%)\n", st.EncodePerRec, 100*st.EncodeShare())
	fmt.Fprintf(w, "  distance: %v (%.0f%%)\n", st.DistancePerRec, 100*(1-st.EncodeShare()))
}
