package tables

import (
	"fmt"
	"io"
	"text/tabwriter"

	"hdfe/internal/core"
	"hdfe/internal/dataset"
	"hdfe/internal/eval"
	"hdfe/internal/metrics"
	"hdfe/internal/rng"
)

// SignificanceRow is one model's paired comparison between its
// feature-trained and hypervector-trained variants: pooled 10-fold CV
// predictions tested with McNemar's test.
type SignificanceRow struct {
	Model       string
	FeatAcc     float64
	HyperAcc    float64
	OnlyFeat    int // examples only the feature model got right
	OnlyHyper   int // examples only the hypervector model got right
	PValue      float64
	Significant bool // p < 0.05
}

// SignificanceResult covers all zoo models on one dataset.
type SignificanceResult struct {
	Dataset string
	Rows    []SignificanceRow
}

// Significance asks the question the paper's tables imply but never test:
// for each model, is the hypervector variant's advantage (or deficit)
// statistically distinguishable from noise? Each model is cross-validated
// on the same folds with both representations, predictions are pooled
// across held-out folds (every record predicted exactly once per
// representation), and McNemar's test scores the paired disagreements.
func Significance(cfg Config, which string) (*SignificanceResult, error) {
	cfg = cfg.normalized()
	ds := LoadDatasets(cfg.Seed)
	var d *dataset.Dataset
	var datasetIdx int
	switch which {
	case "", "pima-m":
		d, datasetIdx = ds.PimaM, 1
	case "pima-r":
		d, datasetIdx = ds.PimaR, 0
	case "sylhet":
		d, datasetIdx = ds.Sylhet, 2
	default:
		return nil, fmt.Errorf("tables: unknown dataset %q", which)
	}
	_, hvFloats, err := core.EncodeDataset(d, hdOptions(cfg, datasetIdx))
	if err != nil {
		return nil, err
	}
	folds := dataset.StratifiedKFold(d, cfg.Folds, rng.New(cfg.Seed+7))

	res := &SignificanceResult{Dataset: d.Name}
	for mi, m := range Zoo(cfg) {
		featPred, err := pooledPredictions(m, cfg.Seed+uint64(mi), d.X, d.Y, folds)
		if err != nil {
			return nil, fmt.Errorf("tables: %s(features): %w", m.Name, err)
		}
		hyperPred, err := pooledPredictions(m, cfg.Seed+uint64(mi)+700, hvFloats, d.Y, folds)
		if err != nil {
			return nil, fmt.Errorf("tables: %s(hypervectors): %w", m.Name, err)
		}
		mc := metrics.McNemar(d.Y, featPred, hyperPred)
		res.Rows = append(res.Rows, SignificanceRow{
			Model:       m.Name,
			FeatAcc:     metrics.Accuracy(d.Y, featPred),
			HyperAcc:    metrics.Accuracy(d.Y, hyperPred),
			OnlyFeat:    mc.OnlyACorrect,
			OnlyHyper:   mc.OnlyBCorrect,
			PValue:      mc.PValue,
			Significant: mc.PValue < 0.05,
		})
	}
	return res, nil
}

// pooledPredictions cross-validates and returns one prediction per record,
// taken from the fold where that record was held out.
func pooledPredictions(m ModelSpec, seed uint64, X [][]float64, y []int, folds []dataset.Fold) ([]int, error) {
	pred := make([]int, len(y))
	seedSrc := rng.New(seed)
	for _, fold := range folds {
		clf := m.New(seedSrc.Uint64())
		trX, trY := eval.Select(X, y, fold.Train)
		teX, _ := eval.Select(X, y, fold.Test)
		if err := clf.Fit(trX, trY); err != nil {
			return nil, err
		}
		p := clf.Predict(teX)
		for i, row := range fold.Test {
			pred[row] = p[i]
		}
	}
	return pred, nil
}

// RenderSignificance prints the paired-test table.
func RenderSignificance(w io.Writer, res *SignificanceResult) {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "McNemar paired test, features vs hypervectors — %s (pooled CV predictions)\n", res.Dataset)
	fmt.Fprintln(tw, "Model\tAcc feat\tAcc HV\tonly-feat\tonly-HV\tp-value\tsignificant")
	for _, r := range res.Rows {
		sig := ""
		if r.Significant {
			sig = "yes"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%.4f\t%s\n",
			r.Model, pct(r.FeatAcc), pct(r.HyperAcc), r.OnlyFeat, r.OnlyHyper, r.PValue, sig)
	}
	tw.Flush()
}
