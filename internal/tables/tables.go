// Package tables reproduces every table of the paper's evaluation section:
//
//	Table I   — per-class feature distribution of the Pima dataset
//	Table II  — Hamming and Sequential NN testing accuracy (features vs
//	            hypervectors) on Pima R / Pima M / Syhlet
//	Table III — 10-fold CV accuracy of 9 ML models × features/hypervectors
//	Table IV  — test metrics on Pima M (90/10 split)
//	Table V   — test metrics on Syhlet (90/10 split) + Hamming reference
//
// Each Table function returns a structured result; the Render functions
// print it in the paper's layout. cmd/hdbench wires them to a CLI and the
// repository-root benchmarks time them.
//
// Following the paper, the hypervector representation for Tables III-V is
// produced by encoding the dataset once (feature min/max only — labels
// never enter the encoding) and handing the encoded matrix to the models
// under the same validation protocol as the raw features. The core
// package's Pipeline offers strictly per-fold encoding for users who want
// it.
package tables

import (
	"hdfe/internal/dataset"
	"hdfe/internal/encode"
	"hdfe/internal/ml"
	"hdfe/internal/ml/boost"
	"hdfe/internal/ml/forest"
	"hdfe/internal/ml/knn"
	"hdfe/internal/ml/linear"
	"hdfe/internal/ml/svm"
	"hdfe/internal/ml/tree"
	"hdfe/internal/synth"
)

// Config tunes experiment scale. The zero value reproduces the paper:
// D = 10,000, 10 folds, 10 NN trials, full-size ensembles.
type Config struct {
	// Seed drives dataset synthesis, encoding, splits and model seeds.
	Seed uint64
	// Dim is the hypervector dimensionality (0 = 10,000).
	Dim int
	// Folds for cross-validation (0 = 10).
	Folds int
	// Trials for the repeated NN experiment (0 = 10).
	Trials int
	// Quick shrinks ensembles and epochs for smoke tests and CI.
	Quick bool
}

func (c Config) normalized() Config {
	if c.Dim == 0 {
		c.Dim = encode.DefaultDim
	}
	if c.Folds == 0 {
		c.Folds = 10
	}
	if c.Trials == 0 {
		c.Trials = 10
	}
	return c
}

// Datasets bundles the three evaluation datasets.
type Datasets struct {
	PimaR  *dataset.Dataset
	PimaM  *dataset.Dataset
	Sylhet *dataset.Dataset
}

// LoadDatasets synthesizes the three datasets from one seed.
func LoadDatasets(seed uint64) Datasets {
	return Datasets{
		PimaR:  synth.PimaR(seed),
		PimaM:  synth.PimaM(seed),
		Sylhet: synth.Sylhet(synth.DefaultSylhetConfig(seed)),
	}
}

// List returns the datasets in the paper's column order with their names.
func (d Datasets) List() []*dataset.Dataset {
	return []*dataset.Dataset{d.PimaR, d.PimaM, d.Sylhet}
}

// ModelSpec names one comparison model and builds fresh instances.
type ModelSpec struct {
	// Name as printed in the paper's tables.
	Name string
	// New returns an untrained instance; seed varies per fold/trial.
	New func(seed uint64) ml.Classifier
}

// Zoo returns the paper's nine ML comparison models (Table III order) with
// their reference hyperparameters. Quick mode shrinks ensemble sizes so
// smoke tests stay fast; the algorithms are unchanged.
func Zoo(cfg Config) []ModelSpec {
	cfg = cfg.normalized()
	trees := 100
	rounds := 100
	catRounds := 200
	if cfg.Quick {
		trees, rounds, catRounds = 15, 15, 20
	}
	return []ModelSpec{
		{Name: "Random Forest", New: func(seed uint64) ml.Classifier {
			return forest.New(forest.Params{NumTrees: trees, Seed: seed})
		}},
		{Name: "KNN", New: func(seed uint64) ml.Classifier {
			return knn.New(5)
		}},
		{Name: "Decision Tree", New: func(seed uint64) ml.Classifier {
			return tree.New(tree.Params{Seed: seed})
		}},
		{Name: "XGBoost", New: func(seed uint64) ml.Classifier {
			return boost.New(boost.Params{
				Style: boost.LevelWise, Rounds: rounds, LearningRate: 0.3,
				MaxDepth: 6, Lambda: 1, MinChildWeight: 1, Subsample: 1, Seed: seed,
			})
		}},
		{Name: "CatBoost", New: func(seed uint64) ml.Classifier {
			return boost.New(boost.Params{
				Style: boost.Oblivious, Rounds: catRounds, LearningRate: 0.1,
				MaxDepth: 6, Lambda: 3, MinChildWeight: 1, Subsample: 1, Seed: seed,
			})
		}},
		{Name: "SGD", New: func(seed uint64) ml.Classifier {
			return linear.NewSGD(seed)
		}},
		{Name: "Logistic Regression", New: func(seed uint64) ml.Classifier {
			return linear.NewLogisticRegression()
		}},
		{Name: "SVC", New: func(seed uint64) ml.Classifier {
			return svm.New(svm.Params{})
		}},
		{Name: "LGBM", New: func(seed uint64) ml.Classifier {
			return boost.New(boost.Params{
				Style: boost.LeafWise, Rounds: rounds, LearningRate: 0.1,
				MaxLeaves: 31, Lambda: 1, MinChildWeight: 1e-3, Subsample: 1, Seed: seed,
			})
		}},
	}
}
