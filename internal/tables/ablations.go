package tables

import (
	"fmt"
	"io"
	"text/tabwriter"

	"hdfe/internal/core"
	"hdfe/internal/encode"
	"hdfe/internal/hv"
	"hdfe/internal/metrics"
	"hdfe/internal/ml/hamming"
)

// AblationResult collects the design-choice ablations DESIGN.md calls out:
// the paper's informal dimensionality exploration (§II: "we didn't see
// much improvement by using larger vectors"), the record-combination rule
// (majority vs bind-and-bundle), the tie-break rule, and the 1-NN Hamming
// model vs the classic HDC class-prototype classifier.
type AblationResult struct {
	Dims        []int
	DimAccuracy map[string][]float64 // dataset -> accuracy per dim

	ModeAccuracy map[string][2]float64 // dataset -> {majority, bindbundle}
	TieAccuracy  map[string][2]float64 // dataset -> {tie->1, tie->0}
	NNvsProto    map[string][2]float64 // dataset -> {1-NN, prototype}
}

// Ablations runs every ablation with Hamming leave-one-out as the probe
// (cheap and model-free, so differences isolate the encoding choice).
func Ablations(cfg Config) (*AblationResult, error) {
	cfg = cfg.normalized()
	ds := LoadDatasets(cfg.Seed)
	res := &AblationResult{
		DimAccuracy:  map[string][]float64{},
		ModeAccuracy: map[string][2]float64{},
		TieAccuracy:  map[string][2]float64{},
		NNvsProto:    map[string][2]float64{},
	}
	res.Dims = []int{256, 1000, 2000, 5000, 10000, 20000}
	if cfg.Quick {
		res.Dims = []int{256, 1000, 2000}
	}

	for di, d := range ds.List() {
		base := hdOptions(cfg, di)

		// Dimensionality sweep.
		for _, dim := range res.Dims {
			opts := base
			opts.Dim = dim
			conf, err := core.HammingLOO(d, opts)
			if err != nil {
				return nil, fmt.Errorf("tables: dim sweep on %s: %w", d.Name, err)
			}
			res.DimAccuracy[d.Name] = append(res.DimAccuracy[d.Name], conf.Accuracy())
		}

		// Majority vs BindBundle.
		var modes [2]float64
		for mi, mode := range []encode.Mode{encode.Majority, encode.BindBundle} {
			opts := base
			opts.Mode = mode
			conf, err := core.HammingLOO(d, opts)
			if err != nil {
				return nil, fmt.Errorf("tables: mode ablation on %s: %w", d.Name, err)
			}
			modes[mi] = conf.Accuracy()
		}
		res.ModeAccuracy[d.Name] = modes

		// Tie-break rule.
		var ties [2]float64
		for ti, tie := range []hv.TieBreak{hv.TieToOne, hv.TieToZero} {
			opts := base
			opts.Tie = tie
			conf, err := core.HammingLOO(d, opts)
			if err != nil {
				return nil, fmt.Errorf("tables: tie ablation on %s: %w", d.Name, err)
			}
			ties[ti] = conf.Accuracy()
		}
		res.TieAccuracy[d.Name] = ties

		// 1-NN vs class prototype (prototype evaluated leave-one-out by
		// re-bundling without the held-out record — cheap because the
		// accumulator is decomposable, but here simply refit per fold
		// over the small datasets).
		ext := core.NewExtractor(base)
		if err := ext.FitDataset(d); err != nil {
			return nil, err
		}
		vs := ext.Transform(d.X)
		nnConf := hamming.LeaveOneOut(vs, d.Y)
		protoConf := prototypeLOO(vs, d.Y)
		res.NNvsProto[d.Name] = [2]float64{nnConf.Accuracy(), protoConf.Accuracy()}
	}
	return res, nil
}

// prototypeLOO evaluates the class-prototype classifier leave-one-out.
func prototypeLOO(vs []hv.Vector, y []int) metrics.Confusion {
	pred := make([]int, len(vs))
	for i := range vs {
		train := make([]hv.Vector, 0, len(vs)-1)
		labels := make([]int, 0, len(vs)-1)
		for j := range vs {
			if j != i {
				train = append(train, vs[j])
				labels = append(labels, y[j])
			}
		}
		p := hamming.FitPrototype(train, labels, hv.TieToOne)
		pred[i] = p.Predict(vs[i])
	}
	return metrics.NewConfusion(y, pred)
}

// RenderAblations prints the ablation grids.
func RenderAblations(w io.Writer, res *AblationResult, datasetNames []string) {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Ablation A — Hamming LOO accuracy by dimensionality")
	fmt.Fprint(tw, "D")
	for _, name := range datasetNames {
		fmt.Fprintf(tw, "\t%s", name)
	}
	fmt.Fprintln(tw)
	for i, dim := range res.Dims {
		fmt.Fprintf(tw, "%d", dim)
		for _, name := range datasetNames {
			fmt.Fprintf(tw, "\t%s", pct(res.DimAccuracy[name][i]))
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "Ablation B — record combination (majority vs bind+bundle)")
	fmt.Fprintln(tw, "Dataset\tMajority\tBindBundle")
	for _, name := range datasetNames {
		m := res.ModeAccuracy[name]
		fmt.Fprintf(tw, "%s\t%s\t%s\n", name, pct(m[0]), pct(m[1]))
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "Ablation C — majority tie-break rule")
	fmt.Fprintln(tw, "Dataset\tTies->1 (paper)\tTies->0")
	for _, name := range datasetNames {
		m := res.TieAccuracy[name]
		fmt.Fprintf(tw, "%s\t%s\t%s\n", name, pct(m[0]), pct(m[1]))
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "Ablation D — 1-NN Hamming vs class-prototype classifier")
	fmt.Fprintln(tw, "Dataset\t1-NN (paper)\tPrototype")
	for _, name := range datasetNames {
		m := res.NNvsProto[name]
		fmt.Fprintf(tw, "%s\t%s\t%s\n", name, pct(m[0]), pct(m[1]))
	}
	tw.Flush()
}

// DatasetNames returns the canonical dataset order for rendering.
func DatasetNames(cfg Config) []string {
	ds := LoadDatasets(cfg.normalized().Seed)
	names := make([]string, 0, 3)
	for _, d := range ds.List() {
		names = append(names, d.Name)
	}
	return names
}
