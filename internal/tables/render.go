package tables

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
)

func pct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*v)
}

func ratio(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// RenderTable1 prints the per-class feature distribution in the paper's
// Table I layout (mean with range in parentheses).
func RenderTable1(w io.Writer, res Table1Result) {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Table I — feature distribution (%s)\n", res.Dataset)
	fmt.Fprintln(tw, "Feature\tPositive\tNegative")
	for _, s := range res.Summaries {
		fmt.Fprintf(tw, "%s\t%.1f (%.4g-%.4g)\t%.1f (%.4g-%.4g)\n",
			s.Name, s.PosMean, s.PosMin, s.PosMax, s.NegMean, s.NegMin, s.NegMax)
	}
	tw.Flush()
}

// RenderTable2 prints Hamming and Sequential NN testing accuracy.
func RenderTable2(w io.Writer, res *Table2Result) {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table II — testing accuracy (features vs hypervectors)")
	fmt.Fprint(tw, "Model")
	for _, name := range res.DatasetNames {
		fmt.Fprintf(tw, "\t%s feat\t%s HV", name, name)
	}
	fmt.Fprintln(tw)
	fmt.Fprint(tw, "Hamming")
	for i := range res.DatasetNames {
		fmt.Fprintf(tw, "\t-\t%s", pct(res.Hamming[i]))
	}
	fmt.Fprintln(tw)
	fmt.Fprint(tw, "Sequential NN")
	for i := range res.DatasetNames {
		fmt.Fprintf(tw, "\t%s\t%s", pct(res.NNFeatures[i]), pct(res.NNHyper[i]))
	}
	fmt.Fprintln(tw)
	tw.Flush()
}

// RenderTable3 prints the cross-validation accuracy grid.
func RenderTable3(w io.Writer, res *Table3Result) {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table III — cross-validation accuracy (features vs hypervectors)")
	fmt.Fprint(tw, "Model")
	for _, name := range res.DatasetNames {
		fmt.Fprintf(tw, "\t%s feat\t%s HV", name, name)
	}
	fmt.Fprintln(tw)
	for mi, model := range res.ModelNames {
		fmt.Fprint(tw, model)
		for di := range res.DatasetNames {
			c := res.Cells[mi][di]
			fmt.Fprintf(tw, "\t%s\t%s", pct(c.Features), pct(c.Hyper))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// RenderTestMetrics prints a Table IV/V metric grid.
func RenderTestMetrics(w io.Writer, title string, res *TestMetricsResult) {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s — %s\n", title, res.Dataset)
	fmt.Fprintln(tw, "Model\tPrec feat\tPrec HD\tRecall feat\tRecall HD\tSpec feat\tSpec HD\tF1 feat\tF1 HD\tAcc feat\tAcc HD")
	for _, row := range res.Rows {
		f, h := row.Features, row.Hyper
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			row.Model,
			ratio(f.Precision), ratio(h.Precision),
			ratio(f.Recall), ratio(h.Recall),
			ratio(f.Specificity), ratio(h.Specificity),
			ratio(f.F1), ratio(h.F1),
			pct(f.Accuracy), pct(h.Accuracy))
	}
	if res.Hamming != nil {
		h := *res.Hamming
		fmt.Fprintf(tw, "Hamming (LOO)\t-\t%s\t-\t%s\t-\t%s\t-\t%s\t-\t%s\n",
			ratio(h.Precision), ratio(h.Recall), ratio(h.Specificity), ratio(h.F1), pct(h.Accuracy))
	}
	tw.Flush()
}
