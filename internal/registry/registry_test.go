package registry

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hdfe/internal/core"
	"hdfe/internal/synth"
)

func testDeployment(t *testing.T, dim int, seed uint64) *core.Deployment {
	t.Helper()
	d := synth.PimaM(seed)
	dep, err := core.BuildDeployment(core.SpecsFor(d.Features), d.X, d.Y, core.Options{Dim: dim, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestAdoptAssignsMonotonicVersions(t *testing.T) {
	r := New()
	dep := testDeployment(t, 64, 7)
	a := r.Adopt(dep, "a", "/models/a.bin", "sha-a")
	b := r.Adopt(dep, "b", "", "")
	if a.Info().Version != 1 || b.Info().Version != 2 {
		t.Fatalf("versions %d, %d, want 1, 2", a.Info().Version, b.Info().Version)
	}
	if a.Info().Name != "a" || a.Info().Path != "/models/a.bin" || a.Info().SHA256 != "sha-a" {
		t.Errorf("info %+v", a.Info())
	}
	if a.Info().Dim != 64 || a.Info().Features != 8 {
		t.Errorf("schema info %+v, want dim 64, 8 features", a.Info())
	}
	if a.Info().LoadedAt.IsZero() {
		t.Error("LoadedAt not stamped")
	}
	hist := r.Loaded()
	if len(hist) != 2 || hist[0].Version != 1 || hist[1].Version != 2 {
		t.Errorf("history %+v", hist)
	}
}

func TestPromoteRetiresAndDrains(t *testing.T) {
	r := New()
	dep := testDeployment(t, 64, 7)
	a := r.Adopt(dep, "a", "", "")
	if old := r.Promote(a); old != nil {
		t.Fatalf("first promote replaced %v", old.Info())
	}
	if r.Swaps() != 0 {
		t.Errorf("swaps %d after boot promote, want 0", r.Swaps())
	}

	// Hold a scoring reference across the swap: the old model must not
	// drain until it is released.
	held := r.AcquireActive()
	if held != a {
		t.Fatalf("acquired %v, want the promoted model", held.Info())
	}

	b := r.Adopt(dep, "b", "", "")
	if old := r.Promote(b); old != a {
		t.Fatalf("promote replaced %v, want a", old)
	}
	if r.Swaps() != 1 {
		t.Errorf("swaps %d after replacement, want 1", r.Swaps())
	}
	if !a.Retired() {
		t.Error("replaced model not retired")
	}
	if b.Retired() {
		t.Error("new active model reports retired")
	}
	select {
	case <-a.Drained():
		t.Fatal("retired model drained while a reference is held")
	case <-time.After(10 * time.Millisecond):
	}
	held.Release()
	select {
	case <-a.Drained():
	case <-time.After(time.Second):
		t.Fatal("retired model never drained after the last release")
	}
}

func TestAcquireRetriesAcrossConcurrentSwaps(t *testing.T) {
	r := New()
	dep := testDeployment(t, 64, 7)
	r.Promote(r.Adopt(dep, "boot", "", ""))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := r.AcquireActive()
				if m == nil {
					t.Error("AcquireActive returned nil with a model promoted")
					return
				}
				// An acquired model must not be drained while we hold it.
				select {
				case <-m.Drained():
					t.Error("acquired a drained model")
					m.Release()
					return
				default:
				}
				m.Release()
			}
		}()
	}
	for i := 0; i < 100; i++ {
		r.Promote(r.Adopt(dep, "next", "", ""))
	}
	close(stop)
	wg.Wait()
}

func TestShadowSlot(t *testing.T) {
	r := New()
	dep := testDeployment(t, 64, 7)
	if r.Shadow() != nil || r.AcquireShadow() != nil {
		t.Fatal("empty registry reports a shadow")
	}
	s1 := r.Adopt(dep, "s1", "", "")
	if old := r.SetShadow(s1); old != nil {
		t.Fatalf("first SetShadow replaced %v", old)
	}
	if r.Shadow() != s1 {
		t.Fatal("shadow slot not published")
	}
	s2 := r.Adopt(dep, "s2", "", "")
	if old := r.SetShadow(s2); old != s1 {
		t.Fatalf("SetShadow replaced %v, want s1", old)
	}
	select {
	case <-s1.Drained():
	case <-time.After(time.Second):
		t.Fatal("replaced shadow never drained")
	}
	if r.SetShadow(nil) != s2 {
		t.Fatal("clearing the shadow did not return s2")
	}
	if r.Shadow() != nil {
		t.Fatal("shadow slot not cleared")
	}
}

func TestModelState(t *testing.T) {
	r := New()
	m := r.Adopt(testDeployment(t, 64, 7), "a", "", "")
	if m.State() != nil {
		t.Fatal("fresh model carries state")
	}
	type payload struct{ x int }
	m.SetState(&payload{x: 42})
	if got := m.State().(*payload); got.x != 42 {
		t.Fatalf("state %+v", got)
	}
}

func TestReadFile(t *testing.T) {
	dep := testDeployment(t, 64, 7)
	path := filepath.Join(t.TempDir(), "dep.bin")
	if err := dep.Save(path); err != nil {
		t.Fatal(err)
	}
	got, sha, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sha) != 64 {
		t.Errorf("sha256 hex %q, want 64 chars", sha)
	}
	d := synth.PimaM(7)
	if got.Score(d.X[0]) != dep.Score(d.X[0]) {
		t.Error("reloaded model scores differently")
	}
	// The digest covers the file bytes: rewriting the same content must
	// reproduce it, corrupting the file must change it (or fail to parse).
	_, sha2, err := ReadFile(path)
	if err != nil || sha2 != sha {
		t.Errorf("digest not deterministic: %q vs %q (%v)", sha, sha2, err)
	}

	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Error("ReadFile on a missing path succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(bad, []byte("not a deployment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFile(bad); err == nil {
		t.Error("ReadFile on garbage succeeded")
	}
}
