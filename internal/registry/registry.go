// Package registry is the versioned model registry behind hdserve's
// zero-downtime model lifecycle. It owns every loaded model — identity
// (monotonic version, name, backing path, artifact SHA-256, load time),
// the active/shadow publication slots, and graceful retirement: a
// replaced model keeps serving its in-flight batches and is only
// declared drained when the last reference is released.
//
// The hot path is lock-free: Active/Shadow and AcquireActive/
// AcquireShadow go through atomic pointers, so scoring never contends
// with a concurrent load or promote. Mutation (Adopt, Promote,
// SetShadow) takes a mutex — model swaps are rare and cheap relative to
// scoring traffic.
package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hdfe/internal/core"
)

// Info identifies one loaded model. It is immutable once the model is
// adopted and safe to hand to JSON encoders and log lines.
type Info struct {
	// Version is the registry-assigned monotonic model version, starting
	// at 1 for the boot model. It is the value of the model_version
	// metric label.
	Version uint64 `json:"version"`
	// Name is the human-facing model name (flag -name, admin "name"
	// field, or the backing path when neither is given).
	Name string `json:"name"`
	// Path is the artifact file the model was loaded from ("" for
	// in-process models, e.g. -demo).
	Path string `json:"path,omitempty"`
	// SHA256 is the hex digest of the artifact bytes ("" for in-process
	// models).
	SHA256 string `json:"sha256,omitempty"`
	// Dim and Features describe the fitted schema.
	Dim      int `json:"dim"`
	Features int `json:"features"`
	// LoadedAt is when the registry adopted the model.
	LoadedAt time.Time `json:"loaded_at"`
}

// Model is one adopted model: its identity, its scorer, and its
// lifecycle state. Scoring paths hold a Model reference (via
// AcquireActive/AcquireShadow) for exactly as long as they use the
// scorer; when a retired model's last reference drops, Drained closes.
type Model struct {
	info   Info
	scorer core.Scorer
	// state is the serving layer's per-model companion (validator, drift
	// trackers). It is written once via SetState before the model is
	// published; the atomic publication pointer orders that write before
	// any reader, so a plain field is race-free.
	state any

	// refs counts the publication slot (1, dropped by retire) plus every
	// in-flight acquisition. retired flips once the model leaves its
	// slot; the drained channel closes when refs then reaches zero.
	refs      atomic.Int64
	retired   atomic.Bool
	drainOnce sync.Once
	drained   chan struct{}
}

// Info returns the model's immutable identity.
func (m *Model) Info() Info { return m.info }

// Scorer returns the model's scorer.
func (m *Model) Scorer() core.Scorer { return m.scorer }

// SetState attaches the serving layer's per-model state. It must be
// called before the model is promoted or set as shadow; the publication
// store/load pair makes the write visible to every acquirer.
func (m *Model) SetState(state any) { m.state = state }

// State returns the value passed to SetState (nil if none).
func (m *Model) State() any { return m.state }

// Release drops one acquisition obtained from AcquireActive or
// AcquireShadow. The last release of a retired model closes Drained.
func (m *Model) Release() {
	if m.refs.Add(-1) == 0 {
		// refs can only reach zero after retire dropped the publication
		// reference, so this model is both unpublished and idle: drained.
		m.drainOnce.Do(func() { close(m.drained) })
	}
}

// Drained returns a channel that closes once the model has been retired
// and its last in-flight use has finished — the graceful-retirement
// signal tests and operators wait on.
func (m *Model) Drained() <-chan struct{} { return m.drained }

// Retired reports whether the model has left its publication slot.
func (m *Model) Retired() bool { return m.retired.Load() }

// retire removes the model's publication reference. Called by the
// registry after the model has been swapped out of its slot; idempotent.
func (m *Model) retire() {
	if m.retired.CompareAndSwap(false, true) {
		m.Release()
	}
}

// Registry tracks every adopted model and publishes the active and
// shadow slots. The zero value is not usable; construct with New.
type Registry struct {
	mu      sync.Mutex
	nextVer uint64
	loaded  []Info

	active atomic.Pointer[Model]
	shadow atomic.Pointer[Model]
	swaps  atomic.Uint64
}

// New returns an empty registry: no active model, no shadow.
func New() *Registry { return &Registry{} }

// Adopt registers a scorer under a fresh version number without
// publishing it. path and sha identify the backing artifact and may be
// empty for in-process models. Call SetState on the returned model
// before Promote/SetShadow.
func (r *Registry) Adopt(sc core.Scorer, name, path, sha string) *Model {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextVer++
	m := &Model{
		info: Info{
			Version:  r.nextVer,
			Name:     name,
			Path:     path,
			SHA256:   sha,
			Dim:      sc.Dim(),
			Features: len(sc.Specs()),
			LoadedAt: time.Now(),
		},
		scorer:  sc,
		drained: make(chan struct{}),
	}
	m.refs.Store(1) // the publication reference, dropped by retire
	r.loaded = append(r.loaded, m.info)
	return m
}

// Promote atomically publishes m as the active model and retires the
// previous one (which keeps serving its in-flight batches until its
// references drain). It returns the replaced model, nil on first
// promote.
func (r *Registry) Promote(m *Model) *Model {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.active.Swap(m)
	if old != nil {
		r.swaps.Add(1)
		old.retire()
	}
	return old
}

// SetShadow atomically publishes m as the shadow model (nil clears the
// slot) and retires the previous shadow. It returns the replaced model.
func (r *Registry) SetShadow(m *Model) *Model {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.shadow.Swap(m)
	if old != nil {
		old.retire()
	}
	return old
}

// Active returns the published active model without acquiring it — for
// identity reads (Info, per-model state), not for scoring. Nil before
// the first Promote.
func (r *Registry) Active() *Model { return r.active.Load() }

// Shadow returns the published shadow model without acquiring it, nil
// when no shadow is configured.
func (r *Registry) Shadow() *Model { return r.shadow.Load() }

// AcquireActive returns the active model with one reference held, or
// nil if none is published. The caller must Release after its last use
// of the scorer. Lock-free: a concurrent Promote costs at most one
// retry.
func (r *Registry) AcquireActive() *Model { return acquire(&r.active) }

// AcquireShadow is AcquireActive for the shadow slot.
func (r *Registry) AcquireShadow() *Model { return acquire(&r.shadow) }

// acquire takes a reference on the slot's current model, retrying if
// the model was swapped out between the load and the ref bump (the
// stale reference is returned and the new occupant acquired instead).
func acquire(slot *atomic.Pointer[Model]) *Model {
	for {
		m := slot.Load()
		if m == nil {
			return nil
		}
		m.refs.Add(1)
		if slot.Load() == m {
			return m
		}
		// The slot moved on while we were acquiring: this reference may
		// belong to an already-retired model. Drop it and retry against
		// the new occupant.
		m.Release()
	}
}

// Swaps reports how many times the active slot replaced a previous
// model (the boot promote does not count).
func (r *Registry) Swaps() uint64 { return r.swaps.Load() }

// Loaded returns the adoption history, oldest first.
func (r *Registry) Loaded() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Info(nil), r.loaded...)
}

// ReadFile loads a deployment artifact and returns it with the hex
// SHA-256 of the file bytes — the identity the registry records and the
// /v1/models endpoint reports. The whole file is read up front so the
// digest covers exactly the bytes that were parsed.
func ReadFile(path string) (*core.Deployment, string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("registry: reading model artifact: %w", err)
	}
	sum := sha256.Sum256(raw)
	dep, err := core.ReadDeployment(bytes.NewReader(raw))
	if err != nil {
		return nil, "", fmt.Errorf("registry: loading model from %s: %w", path, err)
	}
	return dep, hex.EncodeToString(sum[:]), nil
}
