// Package hdfe's repository-root benchmarks regenerate every table of the
// paper and time the two runtime observations its §III reports: that the
// sequential network's epoch time barely changes between 8 raw features
// and 10,000-bit hypervectors, while the boosted-tree models slow down by
// an order of magnitude on hypervectors.
//
// Table benchmarks run the experiment harness at a reduced scale per
// iteration (-quick ensembles, smaller D) so `go test -bench=.` finishes
// in minutes; `cmd/hdbench` runs the full paper configuration.
package hdfe

import (
	"testing"

	"hdfe/internal/core"
	"hdfe/internal/dataset"
	"hdfe/internal/eval"
	"hdfe/internal/hv"
	"hdfe/internal/ml"
	"hdfe/internal/ml/boost"
	"hdfe/internal/ml/forest"
	"hdfe/internal/ml/nn"
	"hdfe/internal/ml/svm"
	"hdfe/internal/rng"
	"hdfe/internal/synth"
	"hdfe/internal/tables"
)

func benchCfg() tables.Config {
	return tables.Config{Seed: 42, Dim: 2000, Folds: 5, Trials: 3, Quick: true}
}

// BenchmarkTable1 regenerates Table I (feature distribution).
func BenchmarkTable1(b *testing.B) {
	cfg := tables.Config{Seed: 42}
	for i := 0; i < b.N; i++ {
		tables.Table1(cfg)
	}
}

// BenchmarkTable2 regenerates Table II (Hamming + Sequential NN).
func BenchmarkTable2(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := tables.Table2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table III (9 models × 3 datasets CV grid).
func BenchmarkTable3(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := tables.Table3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates Table IV (Pima M test metrics).
func BenchmarkTable4(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := tables.Table4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5 regenerates Table V (Syhlet test metrics + Hamming).
func BenchmarkTable5(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := tables.Table5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------- runtime observation A: NN epoch time parity

func nnEpochBench(b *testing.B, hyper bool) {
	d := synth.PimaR(42)
	X := d.X
	if hyper {
		_, hvFloats, err := core.EncodeDataset(d, core.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		X = hvFloats
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := nn.New(nn.Config{Hidden: []int{32, 32}, MaxEpochs: 1, Patience: 1000, Seed: 1})
		if err := net.Fit(X, d.Y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNEpochFeatures times one training epoch on the 8 raw features.
func BenchmarkNNEpochFeatures(b *testing.B) { nnEpochBench(b, false) }

// BenchmarkNNEpochHypervectors times one epoch on 10k-bit hypervectors;
// the paper observed ~10 ms/epoch for both representations.
func BenchmarkNNEpochHypervectors(b *testing.B) { nnEpochBench(b, true) }

// ------------------------- runtime observation B: boosting slows >10x

func fitBench(b *testing.B, factory func() ml.Classifier, hyper bool) {
	d := synth.PimaR(42)
	X := d.X
	if hyper {
		_, hvFloats, err := core.EncodeDataset(d, core.Options{Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		X = hvFloats
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := factory().Fit(X, d.Y); err != nil {
			b.Fatal(err)
		}
	}
}

// LGBM-style booster: the paper's clearest ">10x slower on hypervectors"
// case.
func BenchmarkFitLGBMFeatures(b *testing.B) {
	fitBench(b, func() ml.Classifier { return boost.NewLGBM(1) }, false)
}

func BenchmarkFitLGBMHypervectors(b *testing.B) {
	fitBench(b, func() ml.Classifier { return boost.NewLGBM(1) }, true)
}

func BenchmarkFitXGBFeatures(b *testing.B) {
	fitBench(b, func() ml.Classifier { return boost.NewXGB(1) }, false)
}

func BenchmarkFitXGBHypervectors(b *testing.B) {
	fitBench(b, func() ml.Classifier { return boost.NewXGB(1) }, true)
}

// SVC's Gram matrix runs on packed popcount dot products for binary
// inputs, so its hypervector slowdown stays small — one of the paper's
// "remaining models".
func BenchmarkFitSVCFeatures(b *testing.B) {
	fitBench(b, func() ml.Classifier { return svm.New(svm.Params{}) }, false)
}

func BenchmarkFitSVCHypervectors(b *testing.B) {
	fitBench(b, func() ml.Classifier { return svm.New(svm.Params{}) }, true)
}

// Random forest sees a much smaller relative slowdown ("we didn't observe
// a significant performance difference for the remaining models").
func BenchmarkFitForestFeatures(b *testing.B) {
	fitBench(b, func() ml.Classifier { return forest.New(forest.Params{NumTrees: 100, Seed: 1}) }, false)
}

func BenchmarkFitForestHypervectors(b *testing.B) {
	fitBench(b, func() ml.Classifier { return forest.New(forest.Params{NumTrees: 100, Seed: 1}) }, true)
}

// ------------------------- kernels

// BenchmarkEncodePimaR times fitting the codebook and encoding all 392
// complete Pima records at the paper's D = 10,000.
func BenchmarkEncodePimaR(b *testing.B) {
	d := synth.PimaR(42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.EncodeDataset(d, core.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHammingLOOPimaR times the paper's full pure-HDC experiment on
// Pima R (encode + 392x392 distance matrix + vote).
func BenchmarkHammingLOOPimaR(b *testing.B) {
	d := synth.PimaR(42)
	for i := 0; i < b.N; i++ {
		if _, err := core.HammingLOO(d, core.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHammingLOOSylhet does the same for the 520-record Syhlet data.
func BenchmarkHammingLOOSylhet(b *testing.B) {
	d := synth.Sylhet(synth.DefaultSylhetConfig(42))
	for i := 0; i < b.N; i++ {
		if _, err := core.HammingLOO(d, core.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDimSweepHamming measures how LOO cost scales with D (the
// paper's informal 10k-vs-20k/30k exploration).
func BenchmarkDimSweepHamming(b *testing.B) {
	d := synth.PimaR(42)
	for _, dim := range []int{1000, 10000, 20000} {
		b.Run(itoa(dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.HammingLOO(d, core.Options{Dim: dim, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ------------------------- ablation: majority vs bind-bundle encoding

func BenchmarkEncodeModes(b *testing.B) {
	d := synth.PimaR(42)
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"majority", core.Options{Dim: 10000, Seed: 1}},
		{"bindbundle", core.Options{Dim: 10000, Seed: 1, Mode: 1}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.EncodeDataset(d, mode.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ------------------------- end-to-end pipeline benchmark

// BenchmarkHybridPipeline90_10 times the full hybrid flow on Syhlet: fit
// codebook, encode, train a forest, predict the held-out 10%.
func BenchmarkHybridPipeline90_10(b *testing.B) {
	d := synth.Sylhet(synth.DefaultSylhetConfig(42))
	train, test := dataset.StratifiedSplit(d, 0.9, rng.New(1))
	factory := func() ml.Classifier {
		return core.NewPipeline(core.SpecsFor(d.Features), core.Options{Seed: 2},
			forest.New(forest.Params{NumTrees: 100, Seed: 3}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.TrainTest(factory, d.X, d.Y, train, test); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------- hv micro-kernels at paper scale

func BenchmarkBundlePatient(b *testing.B) {
	r := rng.New(1)
	vs := make([]hv.Vector, 16) // Sylhet's 16 features
	for i := range vs {
		vs[i] = hv.Rand(r, 10000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hv.Bundle(vs, hv.TieToOne)
	}
}
