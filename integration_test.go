package hdfe

// End-to-end integration tests crossing every module boundary: synthetic
// data -> CSV round trip -> missing-data preparation -> hyperdimensional
// encoding -> models -> evaluation protocols. These run at reduced
// dimensionality so the suite stays fast; the full-scale runs live in
// cmd/hdbench and EXPERIMENTS.md.

import (
	"bytes"
	"testing"

	"hdfe/internal/core"
	"hdfe/internal/dataset"
	"hdfe/internal/eval"
	"hdfe/internal/metrics"
	"hdfe/internal/ml"
	"hdfe/internal/ml/forest"
	"hdfe/internal/ml/hamming"
	"hdfe/internal/ml/linear"
	"hdfe/internal/rng"
	"hdfe/internal/synth"
)

const integrationDim = 1024

func TestEndToEndCSVRoundTripAndClassify(t *testing.T) {
	// Generate -> write CSV -> read CSV -> prepare -> encode -> classify.
	orig := synth.Pima(synth.DefaultPimaConfig(7))
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadCSV(&buf, "Pima", dataset.CSVOptions{LabelColumn: "label"})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() || back.MissingCount() != orig.MissingCount() {
		t.Fatalf("round trip lost data: %d rows / %d missing vs %d / %d",
			back.Len(), back.MissingCount(), orig.Len(), orig.MissingCount())
	}
	pimaR := dataset.DropMissing(back)
	conf, err := core.HammingLOO(pimaR, core.Options{Dim: integrationDim, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	neg, _ := pimaR.ClassCounts()
	majority := float64(neg) / float64(pimaR.Len())
	if conf.Accuracy() < majority-0.12 {
		t.Fatalf("LOO accuracy %.3f far below majority baseline %.3f", conf.Accuracy(), majority)
	}
}

func TestSGDGainsFromHypervectors(t *testing.T) {
	// The paper's clearest effect: SGD on raw (unscaled) clinical features
	// is weak; on 0/1 hypervectors it improves by several points.
	d := synth.PimaM(11)
	_, hvFloats, err := core.EncodeDataset(d, core.Options{Dim: integrationDim, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	folds := dataset.StratifiedKFold(d, 5, rng.New(3))
	factory := func(seed uint64) ml.Factory {
		src := rng.New(seed)
		return func() ml.Classifier { return linear.NewSGD(src.Uint64()) }
	}
	feat, err := eval.CrossValidate(factory(1), d.X, d.Y, folds)
	if err != nil {
		t.Fatal(err)
	}
	hyper, err := eval.CrossValidate(factory(2), hvFloats, d.Y, folds)
	if err != nil {
		t.Fatal(err)
	}
	featScore, hvScore := eval.CVScore(feat), eval.CVScore(hyper)
	if hvScore <= featScore {
		t.Fatalf("SGD did not gain from hypervectors: features %.3f, hypervectors %.3f",
			featScore, hvScore)
	}
}

func TestPipelineMatchesManualEncodeForSameSeed(t *testing.T) {
	// The leakage-free Pipeline, fitted on the full dataset, must agree
	// with manual encode-then-fit using the same seed and model.
	d := synth.Sylhet(synth.SylhetConfig{Seed: 5, Pos: 60, Neg: 40})
	opts := core.Options{Dim: 512, Seed: 9}

	pipe := core.NewPipeline(core.SpecsFor(d.Features), opts,
		forest.New(forest.Params{NumTrees: 20, Seed: 1}))
	if err := pipe.Fit(d.X, d.Y); err != nil {
		t.Fatal(err)
	}

	ext := core.NewExtractor(opts)
	if err := ext.FitDataset(d); err != nil {
		t.Fatal(err)
	}
	manual := forest.New(forest.Params{NumTrees: 20, Seed: 1})
	if err := manual.Fit(ext.TransformFloats(d.X), d.Y); err != nil {
		t.Fatal(err)
	}

	pp := pipe.Predict(d.X)
	mp := manual.Predict(ext.TransformFloats(d.X))
	for i := range pp {
		if pp[i] != mp[i] {
			t.Fatalf("pipeline and manual encode disagree at row %d", i)
		}
	}
}

func TestHammingLOOConsistentAcrossRepresentations(t *testing.T) {
	// hamming.LeaveOneOut on vectors must equal running the FloatAdapter
	// through generic LOO folds on the float form of the same encoding.
	d := synth.Sylhet(synth.SylhetConfig{Seed: 6, Pos: 40, Neg: 30})
	vs, fs, err := core.EncodeDataset(d, core.Options{Dim: 256, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	_ = vs
	folds := dataset.LeaveOneOut(d.Len())
	factory := func() ml.Classifier { return hamming.NewFloatAdapter(1) }
	results, err := eval.CrossValidate(factory, fs, d.Y, folds)
	if err != nil {
		t.Fatal(err)
	}
	generic := eval.PooledTest(results)

	direct, err := core.HammingLOO(d, core.Options{Dim: 256, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if generic.Accuracy() != direct.Accuracy() {
		t.Fatalf("generic LOO %.4f != direct LOO %.4f", generic.Accuracy(), direct.Accuracy())
	}
}

func TestMetricsAgreeWithManualCount(t *testing.T) {
	// Full-stack sanity: train a forest on Sylhet, hand-count its test
	// confusion and compare against metrics.NewConfusion.
	d := synth.Sylhet(synth.DefaultSylhetConfig(8))
	train, test := dataset.StratifiedSplit(d, 0.8, rng.New(2))
	trX, trY := eval.Select(d.X, d.Y, train)
	teX, teY := eval.Select(d.X, d.Y, test)
	f := forest.New(forest.Params{NumTrees: 30, Seed: 3})
	if err := f.Fit(trX, trY); err != nil {
		t.Fatal(err)
	}
	pred := f.Predict(teX)
	var tp, tn, fp, fn int
	for i := range pred {
		switch {
		case teY[i] == 1 && pred[i] == 1:
			tp++
		case teY[i] == 0 && pred[i] == 0:
			tn++
		case teY[i] == 0 && pred[i] == 1:
			fp++
		default:
			fn++
		}
	}
	c := metrics.NewConfusion(teY, pred)
	if c.TP != tp || c.TN != tn || c.FP != fp || c.FN != fn {
		t.Fatalf("confusion %v != manual (%d,%d,%d,%d)", c, tp, tn, fp, fn)
	}
}
