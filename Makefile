# Tier-1 entry points for hdfe. `make test` is the gate every change must
# pass; `make test-race` runs the whole module (serving suite included)
# under the race detector; `make fuzz-smoke` gives each fuzz target a short
# budget; `make bench` tracks the zero-allocation encode/score path;
# `make obs-smoke` boots hdserve and asserts the /metrics surface;
# `make trace-smoke` adds a mock OTLP collector and asserts the W3C
# traceparent round trip, span export, exemplars, and /debug/slo;
# `make prof-smoke` drives batch load against a fast profiling cadence
# and asserts the capture ring, pprof downloads, and runtime families;
# `make audit-smoke` serves with the decision audit trail on, then
# verifies and replays the hash chain offline with hdaudit.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all fmt vet test test-race fuzz-smoke bench obs-smoke trace-smoke prof-smoke audit-smoke cover cover-baseline

all: fmt vet test

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test ./...

# Every package, so new packages (internal/serve, cmd/*) are covered
# automatically instead of a hand-maintained list going stale.
test-race:
	$(GO) test -race ./...

fuzz-smoke:
	$(GO) test ./internal/encode -run '^$$' -fuzz '^FuzzEncodeRecordInto$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/encode -run '^$$' -fuzz '^FuzzLevelEncoderFlips$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/hv -run '^$$' -fuzz '^FuzzMajorityInto$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dataset -run '^$$' -fuzz '^FuzzCSVParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/drift -run '^$$' -fuzz '^FuzzFeedbackJoin$$' -fuzztime $(FUZZTIME)

bench:
	$(GO) test ./internal/core -run '^$$' -bench 'TransformRecord|ScoreBatch' -benchmem

obs-smoke:
	sh scripts/obs_smoke.sh

trace-smoke:
	sh scripts/trace_smoke.sh

prof-smoke:
	sh scripts/prof_smoke.sh

audit-smoke:
	sh scripts/audit_smoke.sh

# Per-package coverage gate: fails only when a package drops more than
# 2 points below scripts/coverage_baseline.txt. Refresh the baseline
# with `make cover-baseline` when a drop (or a rise) is intentional.
cover:
	sh scripts/coverage_gate.sh

cover-baseline:
	sh scripts/coverage_gate.sh -update
