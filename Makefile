# Tier-1 entry points for hdfe. `make test` is the gate every change must
# pass; `make test-race` adds the concurrent-serving suite under the race
# detector; `make bench` tracks the zero-allocation encode/score path.

GO ?= go

.PHONY: all fmt vet test test-race bench

all: fmt vet test

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test ./...

test-race:
	$(GO) test -race ./internal/core ./internal/ml/hamming ./internal/hv ./internal/encode ./internal/eval

bench:
	$(GO) test ./internal/core -run '^$$' -bench 'TransformRecord|ScoreBatch' -benchmem
