module hdfe

go 1.22
