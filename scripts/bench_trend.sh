#!/bin/sh
# bench_trend.sh — diff the two most recent BENCH_<n>.json benchmark
# reports with hdbench -trend. Advisory: prints deltas and flags >10%
# regressions but always exits 0 (shared CI runners are too noisy for a
# hard perf gate). With fewer than two reports it reports "seeding" and
# exits 0 so the first PR that introduces the harness passes.
#
# Usage: sh scripts/bench_trend.sh [dir]   (default: repo root)
set -eu

cd "${1:-$(dirname "$0")/..}"

# Collect BENCH_<n>.json sorted numerically by <n>.
files=$(ls BENCH_*.json 2>/dev/null |
  sed -n 's/^BENCH_\([0-9][0-9]*\)\.json$/\1 BENCH_\1.json/p' |
  sort -n | awk '{print $2}')

count=$(printf '%s\n' "$files" | grep -c . || true)
if [ "$count" -lt 2 ]; then
  echo "bench_trend: $count benchmark report(s) found — seeding, nothing to diff"
  exit 0
fi

prev=$(printf '%s\n' "$files" | tail -n 2 | head -n 1)
latest=$(printf '%s\n' "$files" | tail -n 1)

go run ./cmd/hdbench -trend "$prev" "$latest"
