#!/bin/sh
# coverage_gate.sh runs `go test -cover` across the module and fails if
# any package's statement coverage fell more than ALLOWED_DROP points
# below the committed baseline (scripts/coverage_baseline.txt). It is a
# regression gate, not a coverage target: the floor follows the baseline,
# so improving coverage raises the bar on the next baseline refresh while
# a one-off noisy run never blocks a PR over decimals.
#
#   sh scripts/coverage_gate.sh           # gate against the baseline
#   sh scripts/coverage_gate.sh -update   # rewrite the baseline from this run
#
# Packages present in this run but absent from the baseline (new code)
# are advisory only, as are baseline packages that disappeared (moved or
# deleted code): both print a notice and update the baseline when asked.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$ROOT"
BASELINE=scripts/coverage_baseline.txt
ALLOWED_DROP=2.0

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

go test -count=1 -cover ./... >"$TMP/out.txt" 2>&1 || {
    cat "$TMP/out.txt" >&2
    echo "coverage-gate: go test failed" >&2
    exit 1
}
cat "$TMP/out.txt"

# "ok <pkg> <time> coverage: <pct>% of statements" -> "<pkg> <pct>".
# Packages reporting "coverage: [no statements]" are skipped.
awk '$1 == "ok" {
    for (i = 1; i <= NF; i++)
        if ($i == "coverage:" && $(i + 1) ~ /%$/) {
            pct = $(i + 1)
            sub(/%/, "", pct)
            print $2, pct
        }
}' "$TMP/out.txt" | sort >"$TMP/current.txt"

if [ ! -s "$TMP/current.txt" ]; then
    echo "coverage-gate: no coverage lines parsed from go test output" >&2
    exit 1
fi

if [ "${1:-}" = "-update" ]; then
    cp "$TMP/current.txt" "$BASELINE"
    echo "coverage-gate: baseline rewritten ($(wc -l <"$BASELINE" | tr -d ' ') packages)"
    exit 0
fi

if [ ! -f "$BASELINE" ]; then
    echo "coverage-gate: $BASELINE missing; generate it with: sh scripts/coverage_gate.sh -update" >&2
    exit 1
fi

FAIL=0
while read -r pkg base; do
    cur=$(awk -v p="$pkg" '$1 == p { print $2 }' "$TMP/current.txt")
    if [ -z "$cur" ]; then
        echo "coverage-gate: note: $pkg in baseline but not in this run (moved/deleted?)"
        continue
    fi
    if awk -v b="$base" -v c="$cur" -v d="$ALLOWED_DROP" 'BEGIN { exit !(b - c > d) }'; then
        echo "coverage-gate: FAIL $pkg dropped ${base}% -> ${cur}% (allowed drop ${ALLOWED_DROP}pt)" >&2
        FAIL=1
    fi
done <"$BASELINE"

# New packages are reported but never gate: their first baseline entry
# lands with the next -update.
while read -r pkg cur; do
    if ! awk -v p="$pkg" '$1 == p { found = 1 } END { exit !found }' "$BASELINE"; then
        echo "coverage-gate: note: new package $pkg at ${cur}% (not in baseline yet)"
    fi
done <"$TMP/current.txt"

if [ "$FAIL" -ne 0 ]; then
    echo "coverage-gate: coverage regressed; if intentional, refresh with: sh scripts/coverage_gate.sh -update" >&2
    exit 1
fi
echo "coverage-gate: OK"
