#!/bin/sh
# obs_smoke.sh boots hdserve against a model artifact and asserts the
# observability and model-lifecycle surfaces end to end: a JSON
# "serving" log line with the bound address, a successful /v1/score
# round trip, a /metrics exposition carrying every metric family
# dashboards key on, shadow-model comparison via /admin/models/load,
# and a zero-downtime SIGHUP hot reload. Run via `make obs-smoke`.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
TMP=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

cd "$ROOT"
go build -o "$TMP/hdserve" ./cmd/hdserve

# Two artifacts over the same schema: model_a serves, model_b shadows.
"$TMP/hdserve" -write-demo "$TMP/model_a.bin" -dim 256 -seed 42 >/dev/null
"$TMP/hdserve" -write-demo "$TMP/model_b.bin" -dim 256 -seed 43 >/dev/null

"$TMP/hdserve" -model "$TMP/model_a.bin" -name smoke -addr 127.0.0.1:0 -log-format json \
    >"$TMP/stdout.log" 2>"$TMP/stderr.log" &
SERVER_PID=$!

# The "serving" slog line carries the real port (we bound port 0).
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*"msg":"serving".*"addr":"\([^"]*\)".*/\1/p' "$TMP/stdout.log" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "obs-smoke: hdserve exited early" >&2
        cat "$TMP/stdout.log" "$TMP/stderr.log" >&2
        exit 1
    }
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "obs-smoke: server never logged its address" >&2
    cat "$TMP/stdout.log" "$TMP/stderr.log" >&2
    exit 1
fi
echo "obs-smoke: serving on $ADDR"

SCORE=$(curl -sSf -X POST "http://$ADDR/v1/score" \
    -H 'Content-Type: application/json' \
    -d '{"features":[2,120,70,25,100,30.5,0.4,40]}')
echo "obs-smoke: score response $SCORE"
case "$SCORE" in
*'"score"'*) ;;
*)
    echo "obs-smoke: /v1/score response missing score field" >&2
    exit 1
    ;;
esac

curl -sSf "http://$ADDR/metrics" >"$TMP/metrics.txt"
for name in \
    hdserve_build_info \
    hdserve_requests_total \
    hdserve_records_scored_total \
    hdserve_batch_size_bucket \
    hdserve_request_duration_seconds_bucket \
    hdserve_stage_duration_seconds_bucket \
    hdserve_batcher_queue_depth \
    hdfe_drift_psi \
    hdfe_drift_clamp_ratio \
    hdfe_drift_rows_observed_total \
    hdfe_drift_prediction_positive_ratio \
    hdfe_quality_baseline_accuracy \
    hdfe_quality_canary_healthy \
    hdfe_trace_sampled_total \
    hdfe_trace_dropped_total \
    hdfe_slo_target \
    hdfe_slo_burn_rate \
    hdfe_slo_state \
    hdfe_audit_events_total \
    hdfe_audit_dropped_total \
    hdfe_audit_chain_length \
    hdfe_prof_captures_total \
    hdfe_prof_capture_failures_total \
    hdfe_prof_ring_captures \
    hdfe_prof_watchdog_firing \
    hdfe_runtime_goroutines \
    hdfe_runtime_heap_inuse_bytes \
    hdfe_runtime_gc_pauses_seconds_bucket \
    hdfe_runtime_sched_latencies_seconds_bucket \
    go_goroutines; do
    if ! grep -q "^$name" "$TMP/metrics.txt"; then
        echo "obs-smoke: /metrics missing $name" >&2
        cat "$TMP/metrics.txt" >&2
        exit 1
    fi
done

# Every pipeline stage must be represented after one scored request.
for stage in validate batch_wait encode score respond; do
    if ! grep -q "stage=\"$stage\"" "$TMP/metrics.txt"; then
        echo "obs-smoke: /metrics missing stage=\"$stage\"" >&2
        exit 1
    fi
done

# An hdfe_drift_ series must be present with a live value (the scored
# request above has been folded into the input histograms), attributed
# to the boot model via the model_version label.
if ! grep -q '^hdfe_drift_rows_observed_total{model_version="1"} 1' "$TMP/metrics.txt"; then
    echo "obs-smoke: hdfe_drift_rows_observed_total did not count the scored request for model 1" >&2
    grep '^hdfe_drift_' "$TMP/metrics.txt" >&2 || true
    exit 1
fi

curl -sSf "http://$ADDR/debug/traces" | grep -q '"recent"' || {
    echo "obs-smoke: /debug/traces missing recent ring" >&2
    exit 1
}

# W3C trace context: an inbound traceparent is adopted (same trace ID on
# the response) even with span export disabled. The full export path is
# `make trace-smoke`'s job.
curl -sSf -D "$TMP/trace_hdr" -o /dev/null -X POST "http://$ADDR/v1/score" \
    -H 'Content-Type: application/json' \
    -H 'traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01' \
    -d '{"features":[2,120,70,25,100,30.5,0.4,40]}'
if ! grep -qi '^traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-' "$TMP/trace_hdr"; then
    echo "obs-smoke: response did not adopt the upstream trace ID" >&2
    cat "$TMP/trace_hdr" >&2
    exit 1
fi
echo "obs-smoke: traceparent adoption OK"

curl -sSf "http://$ADDR/debug/slo" | grep -q '"availability_state"' || {
    echo "obs-smoke: /debug/slo missing availability_state" >&2
    exit 1
}

# /debug/drift reports the full drift surface as JSON.
DRIFT=$(curl -sSf "http://$ADDR/debug/drift")
for field in '"input_drift_enabled":true' '"psi"' '"quality"' '"canary"'; do
    case "$DRIFT" in
    *"$field"*) ;;
    *)
        echo "obs-smoke: /debug/drift missing $field: $DRIFT" >&2
        exit 1
        ;;
    esac
done
echo "obs-smoke: /debug/drift OK"

# The delayed-label loop: feed the true label back using the request_id
# from the score response and confirm it joins.
REQ_ID=$(printf '%s' "$SCORE" | sed -n 's/.*"request_id":"\([^"]*\)".*/\1/p')
if [ -z "$REQ_ID" ]; then
    echo "obs-smoke: score response carries no request_id: $SCORE" >&2
    exit 1
fi
FEEDBACK=$(curl -sSf -X POST "http://$ADDR/v1/feedback" \
    -H 'Content-Type: application/json' \
    -d "{\"request_id\":\"$REQ_ID\",\"label\":1}")
case "$FEEDBACK" in
*'"matched":1'*) echo "obs-smoke: feedback joined ($FEEDBACK)" ;;
*)
    echo "obs-smoke: feedback did not join: $FEEDBACK" >&2
    exit 1
    ;;
esac

# --- Model lifecycle -------------------------------------------------

# The registry reports the boot model as version 1 with no swaps yet.
MODELS=$(curl -sSf "http://$ADDR/v1/models")
for field in '"version":1' '"name":"smoke"' '"swaps":0' '"sha256"'; do
    case "$MODELS" in
    *"$field"*) ;;
    *)
        echo "obs-smoke: /v1/models missing $field: $MODELS" >&2
        exit 1
        ;;
    esac
done
echo "obs-smoke: /v1/models OK"

# Install model_b as the shadow: it re-scores the same batches off the
# hot path and exports the canary comparison.
LOAD=$(curl -sSf -X POST "http://$ADDR/admin/models/load" \
    -H 'Content-Type: application/json' \
    -d "{\"path\":\"$TMP/model_b.bin\",\"name\":\"cand\",\"shadow\":true}")
case "$LOAD" in
*'"role":"shadow"'*) echo "obs-smoke: shadow installed ($LOAD)" ;;
*)
    echo "obs-smoke: shadow load failed: $LOAD" >&2
    exit 1
    ;;
esac

curl -sSf -X POST "http://$ADDR/v1/score" \
    -H 'Content-Type: application/json' \
    -d '{"features":[2,120,70,25,100,30.5,0.4,40]}' >/dev/null

# The shadow worker is asynchronous: poll until the comparison lands.
SHADOW_OK=""
for _ in $(seq 1 100); do
    curl -sSf "http://$ADDR/metrics" >"$TMP/metrics.txt"
    if grep -q '^hdfe_shadow_records_total{model_version="2"} [1-9]' "$TMP/metrics.txt"; then
        SHADOW_OK=1
        break
    fi
    sleep 0.1
done
if [ -z "$SHADOW_OK" ]; then
    echo "obs-smoke: shadow never scored the live batch" >&2
    grep '^hdfe_shadow_' "$TMP/metrics.txt" >&2 || true
    exit 1
fi
for name in \
    'hdfe_shadow_disagreements_total{model_version="2"}' \
    'hdfe_shadow_disagreement_rate{model_version="2"}' \
    'hdfe_shadow_score_delta_mean_abs{model_version="2"}' \
    hdfe_shadow_dropped_batches_total; do
    if ! grep -q "^$name" "$TMP/metrics.txt"; then
        echo "obs-smoke: /metrics missing $name" >&2
        grep '^hdfe_shadow_' "$TMP/metrics.txt" >&2 || true
        exit 1
    fi
done
echo "obs-smoke: shadow comparison OK"

# SIGHUP re-reads -model and hot-swaps it in as version 3, with zero
# downtime for in-flight traffic.
kill -HUP "$SERVER_PID"
RELOAD_OK=""
for _ in $(seq 1 100); do
    MODELS=$(curl -sSf "http://$ADDR/v1/models")
    case "$MODELS" in
    *'"swaps":1'*)
        RELOAD_OK=1
        break
        ;;
    esac
    sleep 0.1
done
if [ -z "$RELOAD_OK" ]; then
    echo "obs-smoke: SIGHUP reload never landed: $MODELS" >&2
    cat "$TMP/stdout.log" >&2
    exit 1
fi
case "$MODELS" in
*'"version":3'*) ;;
*)
    echo "obs-smoke: reloaded registry has no version 3: $MODELS" >&2
    exit 1
    ;;
esac

# Traffic scored after the swap is attributed to the new version.
RESCORE=$(curl -sSf -X POST "http://$ADDR/v1/score" \
    -H 'Content-Type: application/json' \
    -d '{"features":[2,120,70,25,100,30.5,0.4,40]}')
case "$RESCORE" in
*'"model_version":3'*) ;;
*)
    echo "obs-smoke: post-reload score not attributed to version 3: $RESCORE" >&2
    exit 1
    ;;
esac
curl -sSf "http://$ADDR/metrics" >"$TMP/metrics.txt"
if ! grep -q '^hdserve_model_swaps_total 1' "$TMP/metrics.txt"; then
    echo "obs-smoke: hdserve_model_swaps_total did not count the reload" >&2
    exit 1
fi
if ! grep -q 'model_version="3"' "$TMP/metrics.txt"; then
    echo "obs-smoke: no model_version=\"3\" labels after reload" >&2
    exit 1
fi
echo "obs-smoke: SIGHUP hot reload OK"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

# --- Overload protection ---------------------------------------------

# A second instance squeezed to a 1-record admission budget with a
# chaos-injected 300ms stall in the batch stage: concurrent clients must
# split into one slow success and fast 429s carrying Retry-After, and
# the sheds must land in hdfe_shed_total{reason="queue_full"}.
"$TMP/hdserve" -model "$TMP/model_a.bin" -name shed -addr 127.0.0.1:0 -log-format json \
    -max-inflight 1 -chaos-spec 'batch:p=1,delay=300ms' -chaos-seed 1 \
    >"$TMP/shed_stdout.log" 2>"$TMP/shed_stderr.log" &
SERVER_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*"msg":"serving".*"addr":"\([^"]*\)".*/\1/p' "$TMP/shed_stdout.log" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "obs-smoke: overload hdserve exited early" >&2
        cat "$TMP/shed_stdout.log" "$TMP/shed_stderr.log" >&2
        exit 1
    }
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "obs-smoke: overload server never logged its address" >&2
    exit 1
fi
if ! grep -q '"msg":"chaos injection enabled"' "$TMP/shed_stdout.log"; then
    echo "obs-smoke: -chaos-spec did not log chaos injection enabled" >&2
    cat "$TMP/shed_stdout.log" >&2
    exit 1
fi

# Four concurrent clients against a 1-record budget held for 300ms.
# (wait on the curl PIDs specifically: a bare `wait` would also block on
# the background server.)
CURL_PIDS=""
for i in 1 2 3 4; do
    curl -s -D "$TMP/shed_hdr_$i" -o "$TMP/shed_body_$i" -X POST "http://$ADDR/v1/score" \
        -H 'Content-Type: application/json' \
        -d '{"features":[2,120,70,25,100,30.5,0.4,40]}' &
    CURL_PIDS="$CURL_PIDS $!"
done
for pid in $CURL_PIDS; do
    wait "$pid" || true
done

SHED_COUNT=0
for i in 1 2 3 4; do
    if grep -q '^HTTP/[0-9.]* 429' "$TMP/shed_hdr_$i"; then
        SHED_COUNT=$((SHED_COUNT + 1))
        if ! grep -qi '^Retry-After: [1-9]' "$TMP/shed_hdr_$i"; then
            echo "obs-smoke: 429 without a positive Retry-After header" >&2
            cat "$TMP/shed_hdr_$i" >&2
            exit 1
        fi
    fi
done
if [ "$SHED_COUNT" -eq 0 ]; then
    echo "obs-smoke: no 429s from 4 concurrent clients against -max-inflight 1" >&2
    for i in 1 2 3 4; do cat "$TMP/shed_hdr_$i" >&2; done
    exit 1
fi

curl -sSf "http://$ADDR/metrics" >"$TMP/metrics.txt"
if ! grep -q '^hdfe_shed_total{reason="queue_full"} [1-9]' "$TMP/metrics.txt"; then
    echo "obs-smoke: hdfe_shed_total{reason=\"queue_full\"} did not count the sheds" >&2
    grep '^hdfe_shed_total' "$TMP/metrics.txt" >&2 || true
    exit 1
fi
if ! grep -q '^hdserve_inflight_records' "$TMP/metrics.txt"; then
    echo "obs-smoke: /metrics missing hdserve_inflight_records" >&2
    exit 1
fi
echo "obs-smoke: overload shed OK ($SHED_COUNT of 4 rejected)"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
echo "obs-smoke: OK"
