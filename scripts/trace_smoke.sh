#!/bin/sh
# trace_smoke.sh boots hdserve against a mock OTLP collector and asserts
# the distributed-tracing surface end to end: a W3C traceparent round
# trip (upstream trace ID adopted, fresh server span, tracestate passed
# through), trace IDs in error bodies, at least one exported OTLP/JSON
# span batch landing at the collector, exemplars on the latency
# histogram, and the /debug/slo burn-rate surface. Run via
# `make trace-smoke`.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
TMP=$(mktemp -d)
SERVER_PID=""
COLLECTOR_PID=""
trap 'kill "$SERVER_PID" "$COLLECTOR_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

cd "$ROOT"
go build -o "$TMP/hdserve" ./cmd/hdserve

# --- Mock OTLP collector ---------------------------------------------
# A tiny stdlib-only sink: accepts POSTs on a random port, appends each
# body to a file, and prints its address so we can point hdserve at it.
mkdir -p "$TMP/otlpsink"
cat >"$TMP/otlpsink/main.go" <<'EOF'
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
)

func main() {
	out, err := os.OpenFile(os.Args[1], os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	fmt.Printf("collector listening on %s\n", ln.Addr())
	panic(http.Serve(ln, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		out.Write(append(b, '\n'))
		out.Sync()
	})))
}
EOF
go build -o "$TMP/otlpsink_bin" "$TMP/otlpsink/main.go"
"$TMP/otlpsink_bin" "$TMP/spans.jsonl" >"$TMP/collector.log" 2>&1 &
COLLECTOR_PID=$!

COL_ADDR=""
for _ in $(seq 1 100); do
    COL_ADDR=$(sed -n 's/^collector listening on \(.*\)$/\1/p' "$TMP/collector.log" | head -n1)
    [ -n "$COL_ADDR" ] && break
    sleep 0.1
done
if [ -z "$COL_ADDR" ]; then
    echo "trace-smoke: collector never reported its address" >&2
    cat "$TMP/collector.log" >&2
    exit 1
fi
echo "trace-smoke: collector on $COL_ADDR"

# --- hdserve with export on ------------------------------------------
"$TMP/hdserve" -write-demo "$TMP/model.bin" -dim 256 -seed 42 >/dev/null
"$TMP/hdserve" -model "$TMP/model.bin" -name trace-smoke -addr 127.0.0.1:0 -log-format json \
    -otlp-endpoint "http://$COL_ADDR/v1/traces" -trace-sample 1 \
    -slo-target 0.999 -slo-latency-ms 250 \
    >"$TMP/stdout.log" 2>"$TMP/stderr.log" &
SERVER_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*"msg":"serving".*"addr":"\([^"]*\)".*/\1/p' "$TMP/stdout.log" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "trace-smoke: hdserve exited early" >&2
        cat "$TMP/stdout.log" "$TMP/stderr.log" >&2
        exit 1
    }
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "trace-smoke: server never logged its address" >&2
    exit 1
fi
echo "trace-smoke: serving on $ADDR"

# --- Traceparent round trip ------------------------------------------
UPSTREAM_ID="4bf92f3577b34da6a3ce929d0e0e4736"
UPSTREAM_TP="00-$UPSTREAM_ID-00f067aa0ba902b7-01"
curl -sSf -D "$TMP/hdr" -o "$TMP/body" -X POST "http://$ADDR/v1/score" \
    -H 'Content-Type: application/json' \
    -H "traceparent: $UPSTREAM_TP" \
    -H 'tracestate: vendor=1' \
    -H 'X-Request-Id: smoke-1' \
    -d '{"features":[2,120,70,25,100,30.5,0.4,40]}'

RESP_TP=$(sed -n 's/^[Tt]raceparent: \([0-9a-f-]*\).*/\1/p' "$TMP/hdr" | head -n1)
case "$RESP_TP" in
00-"$UPSTREAM_ID"-*) ;;
*)
    echo "trace-smoke: response traceparent '$RESP_TP' did not adopt the upstream trace ID" >&2
    cat "$TMP/hdr" >&2
    exit 1
    ;;
esac
case "$RESP_TP" in
*00f067aa0ba902b7*)
    echo "trace-smoke: server echoed the upstream span ID instead of minting its own" >&2
    exit 1
    ;;
esac
grep -qi '^tracestate: vendor=1' "$TMP/hdr" || {
    echo "trace-smoke: tracestate not passed through" >&2
    cat "$TMP/hdr" >&2
    exit 1
}
grep -qi '^X-Request-Id: smoke-1' "$TMP/hdr" || {
    echo "trace-smoke: client X-Request-Id not echoed" >&2
    cat "$TMP/hdr" >&2
    exit 1
}
echo "trace-smoke: traceparent round trip OK ($RESP_TP)"

# A malformed traceparent must not fail the request — fresh identity.
curl -sSf -D "$TMP/hdr_bad" -o /dev/null -X POST "http://$ADDR/v1/score" \
    -H 'Content-Type: application/json' \
    -H 'traceparent: ff-zzz-not-a-trace' \
    -d '{"features":[2,120,70,25,100,30.5,0.4,40]}'
BAD_TP=$(sed -n 's/^[Tt]raceparent: \([0-9a-f-]*\).*/\1/p' "$TMP/hdr_bad" | head -n1)
case "$BAD_TP" in
00-????????????????????????????????-????????????????-??) ;;
*)
    echo "trace-smoke: no valid fallback traceparent after a malformed header: '$BAD_TP'" >&2
    exit 1
    ;;
esac

# Error bodies quote the (adopted) trace ID for correlatable bug reports.
ERR=$(curl -s -X POST "http://$ADDR/v1/score" \
    -H 'Content-Type: application/json' \
    -H "traceparent: $UPSTREAM_TP" \
    -d '{"features":[1,2]}')
case "$ERR" in
*"\"trace_id\":\"$UPSTREAM_ID\""*) echo "trace-smoke: error body carries trace_id" ;;
*)
    echo "trace-smoke: 400 body missing the upstream trace_id: $ERR" >&2
    exit 1
    ;;
esac

# --- Exported spans ---------------------------------------------------
# Head sampling is 1, so the scored requests above must land at the
# collector (the exporter flushes at least every second).
EXPORT_OK=""
for _ in $(seq 1 100); do
    if [ -s "$TMP/spans.jsonl" ] && grep -q "$UPSTREAM_ID" "$TMP/spans.jsonl"; then
        EXPORT_OK=1
        break
    fi
    sleep 0.1
done
if [ -z "$EXPORT_OK" ]; then
    echo "trace-smoke: no exported span batch with the adopted trace ID" >&2
    cat "$TMP/spans.jsonl" >&2 || true
    exit 1
fi
grep -q '"resourceSpans"' "$TMP/spans.jsonl" || {
    echo "trace-smoke: exported payload is not OTLP/JSON" >&2
    exit 1
}
grep -q '"hdfe.route"' "$TMP/spans.jsonl" || {
    echo "trace-smoke: exported spans carry no hdfe.route attribute" >&2
    exit 1
}
echo "trace-smoke: exported span batch OK"

# --- Metrics: export counters, exemplars, SLO families ----------------
curl -sSf "http://$ADDR/metrics" >"$TMP/metrics.txt"
for name in \
    'hdfe_trace_sampled_total{decision="head"} [1-9]' \
    'hdfe_trace_exported_total [1-9]' \
    hdfe_trace_dropped_total \
    hdfe_slo_target \
    hdfe_slo_burn_rate \
    'hdfe_slo_state{objective="availability",state="ok"} 1'; do
    if ! grep -q "^$name" "$TMP/metrics.txt"; then
        echo "trace-smoke: /metrics missing $name" >&2
        grep '^hdfe_trace_\|^hdfe_slo_' "$TMP/metrics.txt" >&2 || true
        exit 1
    fi
done
if ! grep -q '# {trace_id="' "$TMP/metrics.txt"; then
    echo "trace-smoke: latency histogram carries no exemplars" >&2
    grep 'hdserve_request_duration_seconds_bucket' "$TMP/metrics.txt" | head -5 >&2
    exit 1
fi
echo "trace-smoke: metrics + exemplars OK"

# --- /debug/slo -------------------------------------------------------
SLO=$(curl -sSf "http://$ADDR/debug/slo")
for field in '"availability_state":"ok"' '"latency_state"' '"window":"5m"' '"error_budget"'; do
    case "$SLO" in
    *"$field"*) ;;
    *)
        echo "trace-smoke: /debug/slo missing $field: $SLO" >&2
        exit 1
        ;;
    esac
done
echo "trace-smoke: /debug/slo OK"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
echo "trace-smoke: OK"
