#!/bin/sh
# audit_smoke.sh boots hdserve with the decision audit trail enabled,
# drives scored, explained, shed, and feedback traffic, then asserts the
# trail end to end: the hdfe_audit_* metric families are live, the
# /debug/audit ring carries the recent decisions, `hdaudit verify` walks
# an unbroken hash chain after shutdown, `hdaudit replay` reproduces
# every audited score bit-identically from the model artifact, and a
# tampered segment fails verification. Run via `make audit-smoke`.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
TMP=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

cd "$ROOT"
go build -o "$TMP/hdserve" ./cmd/hdserve
go build -o "$TMP/hdaudit" ./cmd/hdaudit

"$TMP/hdserve" -write-demo "$TMP/model.bin" -dim 256 -seed 42 >/dev/null

AUDIT_DIR="$TMP/audit"
# -max-wait 20ms makes the deadline shed below deterministic: a 1ms
# client budget always expires inside the 20ms batch window.
"$TMP/hdserve" -model "$TMP/model.bin" -name audit-smoke -addr 127.0.0.1:0 \
    -log-format json -audit-dir "$AUDIT_DIR" -audit-fsync 100ms -max-wait 20ms \
    >"$TMP/stdout.log" 2>"$TMP/stderr.log" &
SERVER_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*"msg":"serving".*"addr":"\([^"]*\)".*/\1/p' "$TMP/stdout.log" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "audit-smoke: hdserve exited early" >&2
        cat "$TMP/stdout.log" "$TMP/stderr.log" >&2
        exit 1
    }
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "audit-smoke: server never logged its address" >&2
    cat "$TMP/stdout.log" "$TMP/stderr.log" >&2
    exit 1
fi
if ! grep -q '"msg":"audit trail enabled"' "$TMP/stdout.log"; then
    echo "audit-smoke: no audit-enabled log line" >&2
    cat "$TMP/stdout.log" >&2
    exit 1
fi
echo "audit-smoke: serving on $ADDR, audit dir $AUDIT_DIR"

# Scored traffic, one request with explain-on-demand.
for i in 1 2 3 4 5; do
    curl -sSf -X POST "http://$ADDR/v1/score" \
        -H 'Content-Type: application/json' \
        -d '{"features":[2,120,70,25,100,30.5,0.4,40]}' >"$TMP/score_$i.json"
done
EXPLAIN=$(curl -sSf -X POST "http://$ADDR/v1/score?explain=3" \
    -H 'Content-Type: application/json' \
    -d '{"features":[2,120,70,25,100,30.5,0.4,40]}')
case "$EXPLAIN" in
*'"explain":['*'"feature"'*'"similarity"'*) echo "audit-smoke: explain-on-demand OK" ;;
*)
    echo "audit-smoke: ?explain=3 returned no contributions: $EXPLAIN" >&2
    exit 1
    ;;
esac

# A batch request: every record becomes its own audit event.
curl -sSf -X POST "http://$ADDR/v1/score/batch" \
    -H 'Content-Type: application/json' \
    -d '{"records":[[2,120,70,25,100,30.5,0.4,40],[1,90,60,20,80,25.0,0.2,30]]}' >/dev/null

# Feedback joins the trail through the request_id handle.
REQ_ID=$(sed -n 's/.*"request_id":"\([^"]*\)".*/\1/p' "$TMP/score_1.json")
curl -sSf -X POST "http://$ADDR/v1/feedback" \
    -H 'Content-Type: application/json' \
    -d "{\"request_id\":\"$REQ_ID\",\"label\":1}" >/dev/null

# Shed traffic: a 1ms client deadline cannot survive the 20ms batch
# window, so the request deterministically times out — and the shed
# must be audited too.
SHED_STATUS=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/score" \
    -H 'Content-Type: application/json' -H 'X-Request-Deadline-Ms: 1' \
    -d '{"features":[2,120,70,25,100,30.5,0.4,40]}')
if [ "$SHED_STATUS" != "504" ]; then
    echo "audit-smoke: deadline request answered $SHED_STATUS, want 504" >&2
    exit 1
fi

# The exposition carries the audit families with live values.
curl -sSf "http://$ADDR/metrics" >"$TMP/metrics.txt"
for name in \
    hdfe_audit_events_total \
    hdfe_audit_dropped_total \
    hdfe_audit_rotations_total \
    hdfe_audit_chain_length \
    hdfe_audit_fsyncs_total \
    hdfe_audit_fsync_seconds_total; do
    if ! grep -q "^$name" "$TMP/metrics.txt"; then
        echo "audit-smoke: /metrics missing $name" >&2
        cat "$TMP/metrics.txt" >&2
        exit 1
    fi
done

# The async writer should land all 8 scored events quickly.
SCORED_OK=""
for _ in $(seq 1 100); do
    curl -sSf "http://$ADDR/metrics" >"$TMP/metrics.txt"
    if grep -q '^hdfe_audit_events_total{outcome="scored"} 8' "$TMP/metrics.txt"; then
        SCORED_OK=1
        break
    fi
    sleep 0.1
done
if [ -z "$SCORED_OK" ]; then
    echo "audit-smoke: hdfe_audit_events_total{outcome=\"scored\"} never reached 8" >&2
    grep '^hdfe_audit_' "$TMP/metrics.txt" >&2 || true
    exit 1
fi
echo "audit-smoke: audit metric families OK"

# /debug/audit reports the live chain state and the recent-events ring.
DEBUG=$(curl -sSf "http://$ADDR/debug/audit")
for field in '"enabled":true' '"chain_head"' '"recent"' '"score_bits"'; do
    case "$DEBUG" in
    *"$field"*) ;;
    *)
        echo "audit-smoke: /debug/audit missing $field: $DEBUG" >&2
        exit 1
        ;;
    esac
done
echo "audit-smoke: /debug/audit OK"

# Graceful shutdown seals the chain.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

# Offline verification: the hash chain must be unbroken, and the trail
# must replay bit-identically against the serving artifact.
"$TMP/hdaudit" verify -dir "$AUDIT_DIR" >"$TMP/verify.out"
cat "$TMP/verify.out"
grep -q 'audit chain OK' "$TMP/verify.out" || {
    echo "audit-smoke: hdaudit verify did not report OK" >&2
    exit 1
}
grep -q 'scored=8' "$TMP/verify.out" || {
    echo "audit-smoke: verify census missing scored=8" >&2
    exit 1
}
grep -q 'shed=1' "$TMP/verify.out" || {
    echo "audit-smoke: verify census missing shed=1" >&2
    exit 1
}
grep -q 'ok=1' "$TMP/verify.out" || {
    echo "audit-smoke: verify census missing the feedback event (ok=1)" >&2
    exit 1
}

"$TMP/hdaudit" replay -dir "$AUDIT_DIR" -model "$TMP/model.bin" >"$TMP/replay.out"
cat "$TMP/replay.out"
grep -q 'replayed 8 scored events' "$TMP/replay.out" || {
    echo "audit-smoke: replay did not cover all 8 scored events" >&2
    exit 1
}
grep -q 'matched 8, diverged 0' "$TMP/replay.out" || {
    echo "audit-smoke: replay diverged" >&2
    exit 1
}
echo "audit-smoke: verify + replay OK"

# Tamper detection: flip one byte in the newest segment and watch
# verification fail.
SEG=$(ls "$AUDIT_DIR"/audit-*.jsonl | head -n1)
dd if=/dev/zero of="$SEG" bs=1 count=1 seek=100 conv=notrunc 2>/dev/null
if "$TMP/hdaudit" verify -dir "$AUDIT_DIR" >"$TMP/tamper.out" 2>&1; then
    echo "audit-smoke: verify passed a tampered segment" >&2
    cat "$TMP/tamper.out" >&2
    exit 1
fi
echo "audit-smoke: tamper detection OK"
echo "audit-smoke: OK"
