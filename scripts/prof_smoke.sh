#!/bin/sh
# prof_smoke.sh boots hdserve with a fast continuous-profiling cadence,
# drives batch-scoring load, and asserts the self-observability surface
# end to end: a scheduled CPU capture lands in the ring with an encode
# frame in its top table, the capture downloads as a valid gzipped pprof
# blob, the hdfe_runtime_* and hdfe_prof_* metric families scrape, and
# the watchdogs report state at /debug/prof. Run via `make prof-smoke`.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
TMP=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

cd "$ROOT"
go build -o "$TMP/hdserve" ./cmd/hdserve

# A larger-than-default model so each batch burns enough CPU for the
# profiler's sampler to catch encode/score frames.
"$TMP/hdserve" -write-demo "$TMP/model.bin" -dim 4096 -seed 42 >/dev/null

"$TMP/hdserve" -model "$TMP/model.bin" -name prof-smoke -addr 127.0.0.1:0 \
    -log-format json -prof-interval 500ms -prof-cpu-ms 300 \
    >"$TMP/stdout.log" 2>"$TMP/stderr.log" &
SERVER_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*"msg":"serving".*"addr":"\([^"]*\)".*/\1/p' "$TMP/stdout.log" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "prof-smoke: hdserve exited early" >&2
        cat "$TMP/stdout.log" "$TMP/stderr.log" >&2
        exit 1
    }
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "prof-smoke: server never logged its address" >&2
    cat "$TMP/stdout.log" "$TMP/stderr.log" >&2
    exit 1
fi
echo "prof-smoke: serving on $ADDR"

# A 256-record batch body: the same row repeated keeps the JSON cheap to
# build in shell while still exercising the vectorized encode path.
ROW='[2,120,70,25,100,30.5,0.4,40]'
BODY='{"records":['
i=0
while [ $i -lt 256 ]; do
    [ $i -gt 0 ] && BODY="$BODY,"
    BODY="$BODY$ROW"
    i=$((i + 1))
done
BODY="$BODY]}"
printf '%s' "$BODY" >"$TMP/batch.json"

# Drive load in the background so the scheduled CPU windows observe a
# busy encode/score path.
(
    while :; do
        curl -s -o /dev/null -X POST "http://$ADDR/v1/score/batch" \
            -H 'Content-Type: application/json' --data-binary @"$TMP/batch.json" || exit 0
    done
) &
LOAD_PID=$!

# Poll /debug/prof until a scheduled CPU capture's top table names a
# hot-path frame (internal/encode or internal/hv).
CAPTURE_ID=""
for _ in $(seq 1 300); do
    curl -sSf "http://$ADDR/debug/prof" >"$TMP/prof.json" 2>/dev/null || {
        sleep 0.1
        continue
    }
    if grep -q 'internal/encode\|internal/hv' "$TMP/prof.json"; then
        CAPTURE_ID=$(sed -n 's/.*"top_cpu":{"capture_id":\([0-9]*\).*/\1/p' "$TMP/prof.json" | head -n1)
        [ -n "$CAPTURE_ID" ] && break
    fi
    sleep 0.1
done
kill "$LOAD_PID" 2>/dev/null || true
wait "$LOAD_PID" 2>/dev/null || true
if [ -z "$CAPTURE_ID" ]; then
    echo "prof-smoke: no CPU capture with an encode/hv frame within 30s" >&2
    cat "$TMP/prof.json" >&2
    exit 1
fi
echo "prof-smoke: hot-path CPU capture id=$CAPTURE_ID"

# The index reports the effective cadence and the watchdog states.
for field in '"interval_ms":500' '"watchdogs"' '"goroutines"' '"heap_slope"' '"gc_pause"'; do
    if ! grep -q "$field" "$TMP/prof.json"; then
        echo "prof-smoke: /debug/prof missing $field" >&2
        cat "$TMP/prof.json" >&2
        exit 1
    fi
done

# The capture downloads as the gzipped pprof blob runtime/pprof wrote.
curl -sSf "http://$ADDR/debug/prof/$CAPTURE_ID" -o "$TMP/capture.pb.gz"
MAGIC=$(od -An -tx1 -N2 "$TMP/capture.pb.gz" | tr -d ' ')
if [ "$MAGIC" != "1f8b" ]; then
    echo "prof-smoke: download is not gzip (magic $MAGIC)" >&2
    exit 1
fi
echo "prof-smoke: capture downloads as gzip ($(wc -c <"$TMP/capture.pb.gz") bytes)"

# A bogus capture id is a clean 404, not a crash.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/debug/prof/999999")
if [ "$CODE" != "404" ]; then
    echo "prof-smoke: missing capture returned $CODE, want 404" >&2
    exit 1
fi

# The runtime and profiler metric families scrape.
curl -sSf "http://$ADDR/metrics" >"$TMP/metrics.txt"
for name in \
    hdfe_prof_captures_total \
    hdfe_prof_capture_failures_total \
    hdfe_prof_ring_captures \
    hdfe_prof_watchdog_firing \
    hdfe_prof_watchdog_triggers_total \
    hdfe_runtime_goroutines \
    hdfe_runtime_heap_inuse_bytes \
    hdfe_runtime_heap_goal_bytes \
    hdfe_runtime_mem_total_bytes \
    hdfe_runtime_mutex_wait_seconds_total \
    hdfe_runtime_gc_cycles_total \
    hdfe_runtime_gc_pauses_seconds_bucket \
    hdfe_runtime_sched_latencies_seconds_bucket; do
    if ! grep -q "^$name" "$TMP/metrics.txt"; then
        echo "prof-smoke: /metrics missing $name" >&2
        grep '^hdfe_prof_\|^hdfe_runtime_' "$TMP/metrics.txt" >&2 || true
        exit 1
    fi
done
if ! grep -q '^hdfe_prof_captures_total{kind="cpu"} [1-9]' "$TMP/metrics.txt"; then
    echo "prof-smoke: hdfe_prof_captures_total{kind=\"cpu\"} never incremented" >&2
    grep '^hdfe_prof_' "$TMP/metrics.txt" >&2 || true
    exit 1
fi
echo "prof-smoke: metric families OK"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
echo "prof-smoke: OK"
