package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hdfe/internal/core"
	"hdfe/internal/hv"
	"hdfe/internal/obs/audit"
	"hdfe/internal/obs/prof"
	"hdfe/internal/serve"
	"hdfe/internal/synth"
)

// benchSchemaVersion identifies the BENCH_*.json layout so trend tooling
// can refuse to diff incompatible files.
const benchSchemaVersion = 1

// benchConfig records what the benchmark actually ran.
type benchConfig struct {
	Dim     int    `json:"dim"`
	Seed    uint64 `json:"seed"`
	Records int    `json:"records"`
	Quick   bool   `json:"quick"`
}

// stageStats is one hot-path stage's throughput summary.
type stageStats struct {
	NsPerRecord     float64 `json:"ns_per_record"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
}

// serveStats summarizes the HTTP serving benchmark.
type serveStats struct {
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50Micros      float64 `json:"p50_us"`
	P99Micros      float64 `json:"p99_us"`
	MeanBatch      float64 `json:"mean_batch"`
}

// auditStats is the decision-audit overhead row: the per-record scoring
// cost with the audit trail off and on (score + wide-event construction
// + lossy enqueue into a live writer), plus the delta. The On pass pays
// the event's input copy and sha256 digest, so this row is the budget a
// deployment spends per decision for a tamper-evident trail.
type auditStats struct {
	Off                 stageStats `json:"off"`
	On                  stageStats `json:"on"`
	OverheadNsPerRecord float64    `json:"overhead_ns_per_record"`
}

// runtimeStats captures the runtime's health after a steady-state encode
// loop: GC pause tail over the loop's window, allocation rate, and the
// resident heap once the encode pools are warm. Ties a latency
// regression in the stage stats to its runtime cause (GC pressure vs
// plain slowdown).
type runtimeStats struct {
	GCPauseP99Micros float64 `json:"gc_pause_p99_us"`
	AllocsPerOp      float64 `json:"allocs_per_op"`
	HeapInuseBytes   uint64  `json:"heap_inuse_bytes"`
	Goroutines       int     `json:"goroutines"`
}

// benchReport is the BENCH_*.json schema: the benchmark trajectory
// artifact one per PR, diffed by scripts/bench_trend.sh.
type benchReport struct {
	SchemaVersion int         `json:"schema_version"`
	Config        benchConfig `json:"config"`
	Encode        stageStats  `json:"encode"`
	ScoreBatch    stageStats  `json:"score_batch"`
	Serve         serveStats  `json:"serve"`
	// ServeExport is the same serving benchmark with OTLP span export
	// enabled against a local discard collector at head-sampling 1 — the
	// worst case for export overhead. The delta against Serve guards the
	// zero-cost-telemetry claim. Pointer + omitempty keeps the addition
	// schema-v1-compatible: older reports simply lack the row.
	ServeExport *serveStats `json:"serve_export,omitempty"`
	// Runtime is the runtime-health row measured over a steady-state
	// encode loop. Pointer + omitempty, like ServeExport, keeps the
	// addition schema-v1-compatible.
	Runtime *runtimeStats `json:"runtime,omitempty"`
	// ServeAudit is the audit-trail overhead row, schema-additive like
	// the two above.
	ServeAudit *auditStats `json:"serve_audit,omitempty"`
}

// runBenchJSON measures the three hot paths (record encode, batch
// scoring, HTTP serving) and writes the schema-versioned report to
// jsonOut (auto-numbered BENCH_<n>.json in the working directory when
// empty).
func runBenchJSON(dim int, seed uint64, quick bool, jsonOut string, stdout io.Writer) error {
	if dim == 0 {
		dim = 10000
		if quick {
			dim = 2048
		}
	}
	d := synth.PimaM(seed)
	dep, err := core.BuildDeployment(core.SpecsFor(d.Features), d.X, d.Y, core.Options{Dim: dim, Seed: seed})
	if err != nil {
		return err
	}
	rep := benchReport{
		SchemaVersion: benchSchemaVersion,
		Config:        benchConfig{Dim: dim, Seed: seed, Records: len(d.X), Quick: quick},
	}

	passes := 20
	if quick {
		passes = 3
	}

	// Encode: the zero-allocation per-record path hdserve's batcher uses.
	rep.Encode = timeStage(passes, len(d.X), func() {
		s := hv.GetScratch(dep.Extractor.Dim())
		rec := s.Rec()
		for _, row := range d.X {
			dep.Extractor.TransformRecordInto(row, rec, s)
		}
		hv.PutScratch(s)
	})

	// Score batch: the bulk path behind /v1/score/batch.
	dst := make([]float64, len(d.X))
	rep.ScoreBatch = timeStage(passes, len(d.X), func() {
		dep.ScoreBatchInto(d.X, dst)
	})

	// Serve: concurrent single-record requests through the full HTTP
	// stack, microbatcher included.
	sv, err := benchServe(dep, d.X, quick, "")
	if err != nil {
		return err
	}
	rep.Serve = sv

	// Serve again with the exporter on, every trace kept, against a
	// collector that just drains the body — isolating the export path's
	// hot-path cost from collector speed.
	collector := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
	}))
	defer collector.Close()
	sve, err := benchServe(dep, d.X, quick, collector.URL)
	if err != nil {
		return err
	}
	rep.ServeExport = &sve

	// Runtime health over a steady-state encode loop, read from
	// runtime/metrics via the same collector the profiler's scrape path
	// uses.
	rt := measureRuntime(dep, d.X, quick)
	rep.Runtime = &rt

	// Audit overhead: the same single-record scoring loop with and
	// without a live audit writer taking one wide event per decision.
	ab, err := benchAudit(dep, d.X, quick)
	if err != nil {
		return err
	}
	rep.ServeAudit = &ab

	if jsonOut == "" {
		if jsonOut, err = nextBenchPath("."); err != nil {
			return err
		}
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(jsonOut, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (schema v%d, dim=%d, %d records)\n",
		jsonOut, benchSchemaVersion, dim, len(d.X))
	return nil
}

// timeStage runs fn passes times over records-many rows, measuring wall
// time and heap allocations (runtime.MemStats Mallocs delta).
func timeStage(passes, records int, fn func()) stageStats {
	fn() // warm pools and caches outside the measurement
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < passes; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	total := float64(passes * records)
	return stageStats{
		NsPerRecord:     float64(elapsed.Nanoseconds()) / total,
		RecordsPerSec:   total / elapsed.Seconds(),
		AllocsPerRecord: float64(after.Mallocs-before.Mallocs) / total,
	}
}

// measureRuntime runs the zero-allocation encode path to steady state
// and reports the GC pause p99 over that window, the allocation rate,
// and the post-loop heap. Distinct collectors for the two snapshots keep
// the previous GC-pause histogram from being overwritten: runtime/metrics
// reuses histogram buffers across Read calls on one sample set.
func measureRuntime(dep *core.Deployment, X [][]float64, quick bool) runtimeStats {
	passes := 40
	if quick {
		passes = 8
	}
	s := hv.GetScratch(dep.Extractor.Dim())
	rec := s.Rec()
	// One warm pass before the measurement, like timeStage.
	for _, row := range X {
		dep.Extractor.TransformRecordInto(row, rec, s)
	}
	before := prof.NewCollector().Read()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	ops := 0
	for p := 0; p < passes; p++ {
		for _, row := range X {
			dep.Extractor.TransformRecordInto(row, rec, s)
			ops++
		}
	}
	runtime.ReadMemStats(&ms1)
	after := prof.NewCollector().Read()
	hv.PutScratch(s)
	return runtimeStats{
		GCPauseP99Micros: float64(prof.GCPauseP99Between(before, after).Nanoseconds()) / 1e3,
		AllocsPerOp:      float64(ms1.Mallocs-ms0.Mallocs) / float64(ops),
		HeapInuseBytes:   after.HeapInuseBytes,
		Goroutines:       after.Goroutines,
	}
}

// benchAudit measures the audit trail's per-decision overhead: a plain
// Score pass, then Score plus the full event construction (input copy,
// sha256 digest, Float64bits) and a lossy Enqueue into a writer backed
// by a throwaway directory. A generous queue keeps drops out of the
// measurement — the row prices the hot-path work, not disk speed.
func benchAudit(dep *core.Deployment, X [][]float64, quick bool) (auditStats, error) {
	passes := 10
	if quick {
		passes = 2
	}
	var st auditStats
	st.Off = timeStage(passes, len(X), func() {
		for _, row := range X {
			dep.Score(row)
		}
	})
	dir, err := os.MkdirTemp("", "hdbench-audit-*")
	if err != nil {
		return st, err
	}
	defer os.RemoveAll(dir)
	l, err := audit.Open(audit.Config{Dir: dir, QueueSize: 1 << 16})
	if err != nil {
		return st, err
	}
	st.On = timeStage(passes, len(X), func() {
		for _, row := range X {
			score := dep.Score(row)
			l.Enqueue(audit.Event{
				Route:        "score",
				Outcome:      audit.OutcomeScored,
				ModelVersion: 1,
				Inputs:       audit.Inputs(row),
				InputsSHA256: audit.InputsDigest(row),
				Score:        score,
				ScoreBits:    math.Float64bits(score),
			})
		}
	})
	l.Close()
	st.OverheadNsPerRecord = st.On.NsPerRecord - st.Off.NsPerRecord
	return st, nil
}

// benchServe drives concurrent scoring requests through an httptest
// server and reads the latency quantiles from the server's own metrics.
// A non-empty otlpEndpoint enables span export with head sampling 1.
func benchServe(dep *core.Deployment, X [][]float64, quick bool, otlpEndpoint string) (serveStats, error) {
	cfg := serve.Config{MaxWait: 500 * time.Microsecond}
	if otlpEndpoint != "" {
		cfg.OTLPEndpoint = otlpEndpoint
		cfg.TraceSample = 1
	}
	srv := serve.New(dep, cfg)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bodies := make([][]byte, len(X))
	for i, row := range X {
		b, err := json.Marshal(map[string]any{"features": row})
		if err != nil {
			return serveStats{}, err
		}
		bodies[i] = b
	}
	workers := 8
	perWorker := 250
	if quick {
		workers, perWorker = 4, 50
	}
	client := ts.Client()
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				body := bodies[(w*perWorker+i)%len(bodies)]
				resp, err := client.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("score status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return serveStats{}, err
	default:
	}
	snap := srv.Metrics().Snapshot()
	return serveStats{
		RequestsPerSec: float64(workers*perWorker) / elapsed.Seconds(),
		P50Micros:      snap.LatencyP50Micros,
		P99Micros:      snap.LatencyP99Micros,
		MeanBatch:      snap.MeanBatchSize,
	}, nil
}

// benchNumRe-free scan: BENCH_<n>.json files numbered by integer suffix.
func benchNumber(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "BENCH_")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".json")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// nextBenchPath returns BENCH_<max+1>.json in dir (BENCH_1.json when the
// directory has none).
func nextBenchPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	max := 0
	for _, e := range entries {
		if n, ok := benchNumber(e.Name()); ok && n > max {
			max = n
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", max+1)), nil
}

// readBench loads and validates one BENCH_*.json file.
func readBench(path string) (benchReport, error) {
	var rep benchReport
	blob, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if rep.SchemaVersion != benchSchemaVersion {
		return rep, fmt.Errorf("%s: schema version %d, tool speaks %d", path, rep.SchemaVersion, benchSchemaVersion)
	}
	return rep, nil
}

// trendRow is one metric's before/after comparison. For lowerIsBetter
// metrics (latencies, allocs) a positive delta is a regression; for
// throughput metrics the sign flips.
type trendRow struct {
	name          string
	prev, latest  float64
	lowerIsBetter bool
}

// runBenchTrend prints the metric-by-metric delta between two benchmark
// reports, flagging >10% regressions. It always exits zero: machine
// noise on shared CI runners makes a hard gate flakier than it is
// useful, so the trend is advisory.
func runBenchTrend(prevPath, latestPath string, stdout io.Writer) error {
	prev, err := readBench(prevPath)
	if err != nil {
		return err
	}
	latest, err := readBench(latestPath)
	if err != nil {
		return err
	}
	if prev.Config.Quick != latest.Config.Quick || prev.Config.Dim != latest.Config.Dim {
		fmt.Fprintf(stdout, "note: configs differ (dim %d/%d, quick %v/%v) — deltas are indicative only\n",
			prev.Config.Dim, latest.Config.Dim, prev.Config.Quick, latest.Config.Quick)
	}
	rows := []trendRow{
		{"encode.ns_per_record", prev.Encode.NsPerRecord, latest.Encode.NsPerRecord, true},
		{"encode.allocs_per_record", prev.Encode.AllocsPerRecord, latest.Encode.AllocsPerRecord, true},
		{"score_batch.ns_per_record", prev.ScoreBatch.NsPerRecord, latest.ScoreBatch.NsPerRecord, true},
		{"score_batch.allocs_per_record", prev.ScoreBatch.AllocsPerRecord, latest.ScoreBatch.AllocsPerRecord, true},
		{"serve.requests_per_sec", prev.Serve.RequestsPerSec, latest.Serve.RequestsPerSec, false},
		{"serve.p50_us", prev.Serve.P50Micros, latest.Serve.P50Micros, true},
		{"serve.p99_us", prev.Serve.P99Micros, latest.Serve.P99Micros, true},
	}
	// The export-overhead row is additive: only diffable when both
	// reports carry it.
	if prev.ServeExport != nil && latest.ServeExport != nil {
		rows = append(rows,
			trendRow{"serve_export.p50_us", prev.ServeExport.P50Micros, latest.ServeExport.P50Micros, true},
			trendRow{"serve_export.p99_us", prev.ServeExport.P99Micros, latest.ServeExport.P99Micros, true},
		)
	}
	// The runtime-health row is likewise additive.
	if prev.Runtime != nil && latest.Runtime != nil {
		rows = append(rows,
			trendRow{"runtime.gc_pause_p99_us", prev.Runtime.GCPauseP99Micros, latest.Runtime.GCPauseP99Micros, true},
			trendRow{"runtime.allocs_per_op", prev.Runtime.AllocsPerOp, latest.Runtime.AllocsPerOp, true},
			trendRow{"runtime.heap_inuse_bytes", float64(prev.Runtime.HeapInuseBytes), float64(latest.Runtime.HeapInuseBytes), true},
		)
	}
	// And the audit-overhead row.
	if prev.ServeAudit != nil && latest.ServeAudit != nil {
		rows = append(rows,
			trendRow{"serve_audit.overhead_ns_per_record", prev.ServeAudit.OverheadNsPerRecord, latest.ServeAudit.OverheadNsPerRecord, true},
			trendRow{"serve_audit.on.allocs_per_record", prev.ServeAudit.On.AllocsPerRecord, latest.ServeAudit.On.AllocsPerRecord, true},
		)
	}
	fmt.Fprintf(stdout, "benchmark trend: %s -> %s\n", filepath.Base(prevPath), filepath.Base(latestPath))
	fmt.Fprintf(stdout, "%-32s %14s %14s %9s\n", "metric", "prev", "latest", "delta")
	regressions := 0
	for _, r := range rows {
		var pct float64
		if r.prev != 0 {
			pct = (r.latest - r.prev) / r.prev * 100
		}
		flag := ""
		worse := pct
		if !r.lowerIsBetter {
			worse = -pct
		}
		if r.prev != 0 && worse > 10 {
			flag = "  << regression"
			regressions++
		}
		fmt.Fprintf(stdout, "%-32s %14.4g %14.4g %+8.1f%%%s\n", r.name, r.prev, r.latest, pct, flag)
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "%d metric(s) regressed >10%% (advisory, not blocking)\n", regressions)
	} else {
		fmt.Fprintln(stdout, "no >10% regressions")
	}
	return nil
}

// sortedBenchPaths returns dir's BENCH_*.json files in numeric order
// (used by tests; bench_trend.sh does the same in shell).
func sortedBenchPaths(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type numbered struct {
		n    int
		path string
	}
	var found []numbered
	for _, e := range entries {
		if n, ok := benchNumber(e.Name()); ok {
			found = append(found, numbered{n, filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	paths := make([]string, len(found))
	for i, f := range found {
		paths[i] = f.path
	}
	return paths, nil
}
