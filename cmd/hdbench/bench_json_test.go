package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchJSONRoundTrip runs the quick benchmark to a file and checks
// the report parses, carries the schema version, and has sane values.
func TestBenchJSONRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_1.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-json", "-quick", "-dim", "256", "-json-out", out}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "wrote "+out) {
		t.Errorf("stdout %q does not name the output file", stdout.String())
	}
	rep, err := readBench(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != benchSchemaVersion {
		t.Errorf("schema version %d", rep.SchemaVersion)
	}
	if rep.Config.Dim != 256 || !rep.Config.Quick || rep.Config.Records != 768 {
		t.Errorf("config %+v", rep.Config)
	}
	if rep.Encode.NsPerRecord <= 0 || rep.Encode.RecordsPerSec <= 0 {
		t.Errorf("encode stats %+v", rep.Encode)
	}
	// The Into paths are the zero-allocation contract: steady state must
	// stay under one allocation per record.
	if rep.Encode.AllocsPerRecord > 1 {
		t.Errorf("encode allocates %v per record", rep.Encode.AllocsPerRecord)
	}
	if rep.ScoreBatch.NsPerRecord <= 0 {
		t.Errorf("score_batch stats %+v", rep.ScoreBatch)
	}
	if rep.Serve.RequestsPerSec <= 0 || rep.Serve.P99Micros < rep.Serve.P50Micros {
		t.Errorf("serve stats %+v", rep.Serve)
	}
	if rep.Serve.MeanBatch < 1 {
		t.Errorf("mean batch %v, want >= 1", rep.Serve.MeanBatch)
	}
	if rep.ServeExport == nil {
		t.Fatal("report missing the serve_export overhead row")
	}
	if rep.ServeExport.RequestsPerSec <= 0 || rep.ServeExport.P99Micros < rep.ServeExport.P50Micros {
		t.Errorf("serve_export stats %+v", *rep.ServeExport)
	}
	if rep.Runtime == nil {
		t.Fatal("report missing the runtime row")
	}
	// The encode loop runs on the pooled scratch: steady state must stay
	// under one allocation per record, and the heap must be populated.
	if rep.Runtime.AllocsPerOp > 1 {
		t.Errorf("runtime row allocates %v per op", rep.Runtime.AllocsPerOp)
	}
	if rep.Runtime.HeapInuseBytes == 0 || rep.Runtime.Goroutines < 1 {
		t.Errorf("runtime stats %+v", *rep.Runtime)
	}
	if rep.Runtime.GCPauseP99Micros < 0 {
		t.Errorf("negative gc pause p99 %v", rep.Runtime.GCPauseP99Micros)
	}
	if rep.ServeAudit == nil {
		t.Fatal("report missing the serve_audit overhead row")
	}
	if rep.ServeAudit.Off.NsPerRecord <= 0 || rep.ServeAudit.On.NsPerRecord <= 0 {
		t.Errorf("serve_audit stats %+v", *rep.ServeAudit)
	}
	// The audited pass does strictly more work per record; on a noisy
	// runner the delta can wobble, but the field must be self-consistent.
	if got := rep.ServeAudit.On.NsPerRecord - rep.ServeAudit.Off.NsPerRecord; got != rep.ServeAudit.OverheadNsPerRecord {
		t.Errorf("overhead %v != on-off %v", rep.ServeAudit.OverheadNsPerRecord, got)
	}
}

// TestBenchTrend diffs two synthetic reports and checks regressions are
// flagged (but not fatal), and that schema/arg errors are.
func TestBenchTrend(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep benchReport) string {
		t.Helper()
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := benchReport{
		SchemaVersion: benchSchemaVersion,
		Config:        benchConfig{Dim: 256, Seed: 42, Records: 768, Quick: true},
		Encode:        stageStats{NsPerRecord: 1000, RecordsPerSec: 1e6, AllocsPerRecord: 0},
		ScoreBatch:    stageStats{NsPerRecord: 1200, RecordsPerSec: 8e5, AllocsPerRecord: 0},
		Serve:         serveStats{RequestsPerSec: 5000, P50Micros: 200, P99Micros: 900, MeanBatch: 3},
		ServeExport:   &serveStats{RequestsPerSec: 4900, P50Micros: 210, P99Micros: 950, MeanBatch: 3},
		Runtime:       &runtimeStats{GCPauseP99Micros: 120, AllocsPerOp: 0.1, HeapInuseBytes: 1 << 20, Goroutines: 8},
		ServeAudit: &auditStats{
			Off:                 stageStats{NsPerRecord: 1100, RecordsPerSec: 9e5},
			On:                  stageStats{NsPerRecord: 1600, RecordsPerSec: 6e5, AllocsPerRecord: 4},
			OverheadNsPerRecord: 500,
		},
	}
	slower := base
	slower.Encode.NsPerRecord = 1500 // +50%: must be flagged
	slower.Serve.RequestsPerSec = 6000
	ex := *base.ServeExport
	slower.ServeExport = &ex

	prev := write("BENCH_1.json", base)
	latest := write("BENCH_2.json", slower)

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-trend", prev, latest}, &stdout, &stderr); err != nil {
		t.Fatalf("trend with a regression must not fail: %v", err)
	}
	out := stdout.String()
	if !strings.Contains(out, "encode.ns_per_record") || !strings.Contains(out, "<< regression") {
		t.Errorf("trend output missing the flagged regression:\n%s", out)
	}
	if !strings.Contains(out, "serve_export.p99_us") {
		t.Errorf("trend output missing the export-overhead row:\n%s", out)
	}
	if !strings.Contains(out, "runtime.gc_pause_p99_us") {
		t.Errorf("trend output missing the runtime-health row:\n%s", out)
	}
	if !strings.Contains(out, "serve_audit.overhead_ns_per_record") {
		t.Errorf("trend output missing the audit-overhead row:\n%s", out)
	}
	if !strings.Contains(out, "1 metric(s) regressed") {
		t.Errorf("trend output missing the summary line:\n%s", out)
	}

	stdout.Reset()
	if err := run([]string{"-trend", latest, latest}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "no >10% regressions") {
		t.Errorf("self-diff output:\n%s", stdout.String())
	}

	// Arg and schema errors are hard failures.
	if err := run([]string{"-trend", prev}, &stdout, &stderr); err == nil {
		t.Error("-trend with one path accepted")
	}
	bad := base
	bad.SchemaVersion = 99
	badPath := write("BENCH_3.json", bad)
	if err := run([]string{"-trend", prev, badPath}, &stdout, &stderr); err == nil {
		t.Error("mismatched schema version accepted")
	}
}

// TestNextBenchPath pins the auto-numbering: max+1, starting at 1.
func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	path, err := nextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_1.json" {
		t.Errorf("empty dir -> %s, want BENCH_1.json", path)
	}
	for _, name := range []string{"BENCH_2.json", "BENCH_7.json", "BENCH_x.json", "bench_9.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	path, err = nextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_8.json" {
		t.Errorf("got %s, want BENCH_8.json (max numbered is 7)", path)
	}
	paths, err := sortedBenchPaths(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || filepath.Base(paths[0]) != "BENCH_2.json" || filepath.Base(paths[1]) != "BENCH_7.json" {
		t.Errorf("sorted bench paths %v", paths)
	}
}
