package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTable1Smoke(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-exp", "table1", "-quick", "-seed", "1"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Table I — feature distribution",
		"Glucose",
		"(table1 completed in",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunRuntimeSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-exp", "runtime", "-quick", "-dim", "512"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(runtime completed in") {
		t.Fatalf("runtime experiment did not complete:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-exp", "table99"}, &out, &errOut); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-not-a-flag"}, &out, &errOut); err == nil {
		t.Fatal("bogus flag accepted")
	}
}

func TestRunIsDeterministicPerSeed(t *testing.T) {
	stripTimings := func(s string) string {
		var kept []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "(table1 completed") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	var a, b, discard bytes.Buffer
	if err := run([]string{"-exp", "table1", "-seed", "7"}, &a, &discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "table1", "-seed", "7"}, &b, &discard); err != nil {
		t.Fatal(err)
	}
	if stripTimings(a.String()) != stripTimings(b.String()) {
		t.Fatal("same seed produced different Table I output")
	}
}
