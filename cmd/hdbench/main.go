// Command hdbench regenerates the paper's tables.
//
// Usage:
//
//	hdbench [-exp all|table1|table2|table3|table4|table5] [-seed N]
//	        [-dim N] [-folds N] [-trials N] [-quick]
//
// Each experiment prints a table in the paper's layout. The -quick flag
// shrinks ensembles and epochs for a fast smoke run; the defaults
// reproduce the paper's configuration (D = 10,000, 10-fold CV, 10 NN
// trials, full ensembles).
//
// The runtime experiment additionally reports the encode path's per-record
// time and allocations for the legacy (value-returning) API against the
// destination-passing Into API, which recycles buffers and should sit near
// zero allocations per record.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hdfe/internal/tables"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: all, table1, table2, table3, table4, table5, ablations, curve, runtime, mcnemar")
		seed   = flag.Uint64("seed", 42, "master seed for data synthesis, encoding and splits")
		dim    = flag.Int("dim", 0, "hypervector dimensionality (0 = paper's 10000)")
		folds  = flag.Int("folds", 0, "cross-validation folds (0 = paper's 10)")
		trials = flag.Int("trials", 0, "NN repetitions (0 = paper's 10)")
		quick  = flag.Bool("quick", false, "shrink ensembles and epochs for a fast smoke run")

		curveModel   = flag.String("curve-model", "SGD", "zoo model for -exp curve")
		curveRepeats = flag.Int("curve-repeats", 5, "resamples per learning-curve point")
		mcnemarData  = flag.String("mcnemar-dataset", "pima-m", "dataset for -exp mcnemar: pima-r, pima-m, sylhet")
	)
	flag.Parse()

	cfg := tables.Config{Seed: *seed, Dim: *dim, Folds: *folds, Trials: *trials, Quick: *quick}
	run := func(name string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	any := false
	if want("table1") {
		any = true
		run("table1", func() error {
			tables.RenderTable1(os.Stdout, tables.Table1(cfg))
			return nil
		})
	}
	if want("table2") {
		any = true
		run("table2", func() error {
			res, err := tables.Table2(cfg)
			if err != nil {
				return err
			}
			tables.RenderTable2(os.Stdout, res)
			return nil
		})
	}
	if want("table3") {
		any = true
		run("table3", func() error {
			res, err := tables.Table3(cfg)
			if err != nil {
				return err
			}
			tables.RenderTable3(os.Stdout, res)
			return nil
		})
	}
	if want("table4") {
		any = true
		run("table4", func() error {
			res, err := tables.Table4(cfg)
			if err != nil {
				return err
			}
			tables.RenderTestMetrics(os.Stdout, "Table IV", res)
			return nil
		})
	}
	if want("table5") {
		any = true
		run("table5", func() error {
			res, err := tables.Table5(cfg)
			if err != nil {
				return err
			}
			tables.RenderTestMetrics(os.Stdout, "Table V", res)
			return nil
		})
	}
	if *exp == "curve" {
		any = true
		run("curve", func() error {
			res, err := tables.LearningCurve(cfg, *curveModel, *curveRepeats)
			if err != nil {
				return err
			}
			tables.RenderLearningCurve(os.Stdout, res)
			return nil
		})
	}
	if *exp == "mcnemar" {
		any = true
		run("mcnemar", func() error {
			res, err := tables.Significance(cfg, *mcnemarData)
			if err != nil {
				return err
			}
			tables.RenderSignificance(os.Stdout, res)
			return nil
		})
	}
	if *exp == "runtime" {
		any = true
		run("runtime", func() error {
			res, err := tables.Runtime(cfg)
			if err != nil {
				return err
			}
			tables.RenderRuntime(os.Stdout, res)
			return nil
		})
	}
	if want("ablations") && *exp == "ablations" {
		any = true
		run("ablations", func() error {
			res, err := tables.Ablations(cfg)
			if err != nil {
				return err
			}
			tables.RenderAblations(os.Stdout, res, tables.DatasetNames(cfg))
			return nil
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "hdbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
