// Command hdbench regenerates the paper's tables.
//
// Usage:
//
//	hdbench [-exp all|table1|table2|table3|table4|table5] [-seed N]
//	        [-dim N] [-folds N] [-trials N] [-quick]
//	hdbench -json [-json-out BENCH_4.json] [-dim N] [-seed N] [-quick]
//	hdbench -trend BENCH_3.json BENCH_4.json
//
// -json measures the encode, batch-scoring, and HTTP-serving hot paths
// and writes a schema-versioned BENCH_<n>.json (auto-numbered in the
// working directory unless -json-out names a path) — one per PR, the
// repo's benchmark trajectory. -trend diffs two such files and flags
// >10% regressions without failing (advisory; see
// scripts/bench_trend.sh).
//
// Each experiment prints a table in the paper's layout. The -quick flag
// shrinks ensembles and epochs for a fast smoke run; the defaults
// reproduce the paper's configuration (D = 10,000, 10-fold CV, 10 NN
// trials, full ensembles).
//
// The runtime experiment additionally reports the encode path's per-record
// time and allocations for the legacy (value-returning) API against the
// destination-passing Into API, which recycles buffers and should sit near
// zero allocations per record, plus a serving stage split attributing
// per-record scoring cost to hypervector encoding vs Hamming-distance
// scoring (the same split hdserve exports at /metrics), so benchmark
// trajectories can tie a regression to a specific stage.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hdfe/internal/tables"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "hdbench: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable main: tables render to stdout.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hdbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp    = fs.String("exp", "all", "experiment: all, table1, table2, table3, table4, table5, ablations, curve, runtime, mcnemar")
		seed   = fs.Uint64("seed", 42, "master seed for data synthesis, encoding and splits")
		dim    = fs.Int("dim", 0, "hypervector dimensionality (0 = paper's 10000)")
		folds  = fs.Int("folds", 0, "cross-validation folds (0 = paper's 10)")
		trials = fs.Int("trials", 0, "NN repetitions (0 = paper's 10)")
		quick  = fs.Bool("quick", false, "shrink ensembles and epochs for a fast smoke run")

		curveModel   = fs.String("curve-model", "SGD", "zoo model for -exp curve")
		curveRepeats = fs.Int("curve-repeats", 5, "resamples per learning-curve point")
		mcnemarData  = fs.String("mcnemar-dataset", "pima-m", "dataset for -exp mcnemar: pima-r, pima-m, sylhet")

		jsonFlag = fs.Bool("json", false, "write a schema-versioned benchmark JSON (BENCH_<n>.json) instead of tables")
		jsonOut  = fs.String("json-out", "", "benchmark JSON output path (default: auto-numbered BENCH_<n>.json in the working directory)")
		trend    = fs.Bool("trend", false, "diff two benchmark JSON files: hdbench -trend PREV LATEST")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trend {
		if fs.NArg() != 2 {
			return fmt.Errorf("-trend takes exactly two BENCH_*.json paths, got %d", fs.NArg())
		}
		return runBenchTrend(fs.Arg(0), fs.Arg(1), stdout)
	}
	if *jsonFlag {
		if fs.NArg() > 0 {
			return fmt.Errorf("unexpected arguments: %v", fs.Args())
		}
		return runBenchJSON(*dim, *seed, *quick, *jsonOut, stdout)
	}

	cfg := tables.Config{Seed: *seed, Dim: *dim, Folds: *folds, Trials: *trials, Quick: *quick}
	timed := func(name string, fn func() error) error {
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s failed: %w", name, err)
		}
		fmt.Fprintf(stdout, "(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	any := false
	if want("table1") {
		any = true
		if err := timed("table1", func() error {
			tables.RenderTable1(stdout, tables.Table1(cfg))
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table2") {
		any = true
		if err := timed("table2", func() error {
			res, err := tables.Table2(cfg)
			if err != nil {
				return err
			}
			tables.RenderTable2(stdout, res)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table3") {
		any = true
		if err := timed("table3", func() error {
			res, err := tables.Table3(cfg)
			if err != nil {
				return err
			}
			tables.RenderTable3(stdout, res)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table4") {
		any = true
		if err := timed("table4", func() error {
			res, err := tables.Table4(cfg)
			if err != nil {
				return err
			}
			tables.RenderTestMetrics(stdout, "Table IV", res)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table5") {
		any = true
		if err := timed("table5", func() error {
			res, err := tables.Table5(cfg)
			if err != nil {
				return err
			}
			tables.RenderTestMetrics(stdout, "Table V", res)
			return nil
		}); err != nil {
			return err
		}
	}
	if *exp == "curve" {
		any = true
		if err := timed("curve", func() error {
			res, err := tables.LearningCurve(cfg, *curveModel, *curveRepeats)
			if err != nil {
				return err
			}
			tables.RenderLearningCurve(stdout, res)
			return nil
		}); err != nil {
			return err
		}
	}
	if *exp == "mcnemar" {
		any = true
		if err := timed("mcnemar", func() error {
			res, err := tables.Significance(cfg, *mcnemarData)
			if err != nil {
				return err
			}
			tables.RenderSignificance(stdout, res)
			return nil
		}); err != nil {
			return err
		}
	}
	if *exp == "runtime" {
		any = true
		if err := timed("runtime", func() error {
			res, err := tables.Runtime(cfg)
			if err != nil {
				return err
			}
			tables.RenderRuntime(stdout, res)
			return nil
		}); err != nil {
			return err
		}
	}
	if *exp == "ablations" {
		any = true
		if err := timed("ablations", func() error {
			res, err := tables.Ablations(cfg)
			if err != nil {
				return err
			}
			tables.RenderAblations(stdout, res, tables.DatasetNames(cfg))
			return nil
		}); err != nil {
			return err
		}
	}
	if !any {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
