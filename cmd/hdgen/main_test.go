package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hdfe/internal/dataset"
)

// pimaHeader is the golden CSV header for every Pima variant.
const pimaHeader = "Pregnancies,Glucose,BloodPressure,SkinThickness,Insulin,BMI,DPF,Age,label"

func TestRunWritesParseableCSV(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-dataset", "pima-r", "-seed", "3"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != pimaHeader {
		t.Fatalf("header %q, want %q", lines[0], pimaHeader)
	}
	if len(lines) < 100 {
		t.Fatalf("only %d CSV lines", len(lines))
	}
	d, err := dataset.ReadCSV(strings.NewReader(out.String()), "roundtrip", dataset.CSVOptions{LabelColumn: "label"})
	if err != nil {
		t.Fatalf("emitted CSV does not re-parse: %v", err)
	}
	if d.NumFeatures() != 8 {
		t.Fatalf("%d features after round trip", d.NumFeatures())
	}
	if d.HasMissing() {
		t.Fatal("pima-r (rows with missing dropped) still has missing cells")
	}
	if !strings.Contains(errOut.String(), "hdgen: wrote") {
		t.Fatalf("summary missing from stderr: %q", errOut.String())
	}
}

func TestRunIsDeterministicPerSeed(t *testing.T) {
	var a, b, c bytes.Buffer
	var discard bytes.Buffer
	if err := run([]string{"-dataset", "sylhet", "-seed", "9"}, &a, &discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dataset", "sylhet", "-seed", "9"}, &b, &discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dataset", "sylhet", "-seed", "10"}, &c, &discard); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different CSV")
	}
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical CSV")
	}
}

func TestRunOutFlagAndErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	var out, errOut bytes.Buffer
	if err := run([]string{"-dataset", "pima-m", "-out", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatal("CSV leaked to stdout with -out set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), pimaHeader) {
		t.Fatalf("file starts with %q", string(data[:40]))
	}

	if err := run([]string{"-dataset", "nope"}, &out, &errOut); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run([]string{"-bogus-flag"}, &out, &errOut); err == nil {
		t.Fatal("bogus flag accepted")
	}
}
