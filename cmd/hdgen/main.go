// Command hdgen writes the synthetic evaluation datasets as CSV files so
// they can be inspected, versioned, or fed back through dataset.ReadCSV.
//
// Usage:
//
//	hdgen -dataset pima|pima-r|pima-m|sylhet [-seed N] [-out file.csv]
//
// With no -out the CSV goes to stdout. The "pima" variant keeps missing
// values (empty cells); "pima-r" drops incomplete rows; "pima-m" imputes
// class medians.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hdfe/internal/dataset"
	"hdfe/internal/synth"
)

func main() {
	var (
		name = flag.String("dataset", "pima", "dataset: pima, pima-r, pima-m, sylhet")
		seed = flag.Uint64("seed", 42, "generator seed")
		out  = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	var d *dataset.Dataset
	switch *name {
	case "pima":
		d = synth.Pima(synth.DefaultPimaConfig(*seed))
	case "pima-r":
		d = synth.PimaR(*seed)
	case "pima-m":
		d = synth.PimaM(*seed)
	case "sylhet":
		d = synth.Sylhet(synth.DefaultSylhetConfig(*seed))
	default:
		fmt.Fprintf(os.Stderr, "hdgen: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdgen: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "hdgen: closing %s: %v\n", *out, err)
				os.Exit(1)
			}
		}()
		w = f
	}
	if err := dataset.WriteCSV(w, d); err != nil {
		fmt.Fprintf(os.Stderr, "hdgen: %v\n", err)
		os.Exit(1)
	}
	neg, pos := d.ClassCounts()
	fmt.Fprintf(os.Stderr, "hdgen: wrote %s: %d rows (%d negative, %d positive), %d features\n",
		d.Name, d.Len(), neg, pos, d.NumFeatures())
}
