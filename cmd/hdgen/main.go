// Command hdgen writes the synthetic evaluation datasets as CSV files so
// they can be inspected, versioned, or fed back through dataset.ReadCSV.
//
// Usage:
//
//	hdgen -dataset pima|pima-r|pima-m|sylhet [-seed N] [-out file.csv]
//
// With no -out the CSV goes to stdout. The "pima" variant keeps missing
// values (empty cells); "pima-r" drops incomplete rows; "pima-m" imputes
// class medians.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hdfe/internal/dataset"
	"hdfe/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "hdgen: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable main: CSV goes to stdout (or -out), the summary
// line to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hdgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name = fs.String("dataset", "pima", "dataset: pima, pima-r, pima-m, sylhet")
		seed = fs.Uint64("seed", 42, "generator seed")
		out  = fs.String("out", "", "output path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var d *dataset.Dataset
	switch *name {
	case "pima":
		d = synth.Pima(synth.DefaultPimaConfig(*seed))
	case "pima-r":
		d = synth.PimaR(*seed)
	case "pima-m":
		d = synth.PimaM(*seed)
	case "sylhet":
		d = synth.Sylhet(synth.DefaultSylhetConfig(*seed))
	default:
		return fmt.Errorf("unknown dataset %q", *name)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteCSV(w, d); err != nil {
		return err
	}
	if f, ok := w.(*os.File); ok {
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing %s: %w", *out, err)
		}
	}
	neg, pos := d.ClassCounts()
	fmt.Fprintf(stderr, "hdgen: wrote %s: %d rows (%d negative, %d positive), %d features\n",
		d.Name, d.Len(), neg, pos, d.NumFeatures())
	return nil
}
