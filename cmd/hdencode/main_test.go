package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"hdfe/internal/core"
	"hdfe/internal/dataset"
	"hdfe/internal/synth"
)

// writeTestCSV materializes a small synthetic dataset for the CLI to read.
func writeTestCSV(t *testing.T) (path string, d *dataset.Dataset) {
	t.Helper()
	d = synth.PimaM(5)
	path = filepath.Join(t.TempDir(), "pima.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, d); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, d
}

func TestRunHexGolden(t *testing.T) {
	path, d := writeTestCSV(t)
	var out, errOut bytes.Buffer
	if err := run([]string{"-in", path, "-dim", "256", "-seed", "4"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != d.Len() {
		t.Fatalf("%d output lines for %d records", len(lines), d.Len())
	}
	// Golden check: the CLI must reproduce the library encoding exactly —
	// same dataset, same dim/seed, same hex.
	ext := core.NewExtractor(core.Options{Dim: 256, Seed: 4})
	if err := ext.FitDataset(d); err != nil {
		t.Fatal(err)
	}
	vs := ext.Transform(d.X)
	for i, line := range lines {
		parts := strings.SplitN(line, " ", 2)
		if len(parts) != 2 {
			t.Fatalf("line %d malformed: %q", i, line)
		}
		if parts[1] != vs[i].Hex() {
			t.Fatalf("line %d hex diverges from library encoding", i)
		}
	}
}

func TestRunBitsAndOnesAgree(t *testing.T) {
	path, _ := writeTestCSV(t)
	var bits, ones, errOut bytes.Buffer
	if err := run([]string{"-in", path, "-dim", "128", "-format", "bits"}, &bits, &errOut); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-dim", "128", "-format", "ones"}, &ones, &errOut); err != nil {
		t.Fatal(err)
	}
	bitLines := strings.Split(strings.TrimSpace(bits.String()), "\n")
	oneLines := strings.Split(strings.TrimSpace(ones.String()), "\n")
	if len(bitLines) != len(oneLines) {
		t.Fatalf("bits %d lines, ones %d lines", len(bitLines), len(oneLines))
	}
	// First record: the set positions listed by -format ones must be the
	// '1' positions of the -format bits string.
	bitStr := strings.SplitN(bitLines[0], " ", 2)[1]
	if len(bitStr) != 128 {
		t.Fatalf("bit string length %d", len(bitStr))
	}
	var wantOnes []string
	for i, ch := range bitStr {
		if ch == '1' {
			wantOnes = append(wantOnes, strconv.Itoa(i))
		}
	}
	gotFields := strings.Fields(oneLines[0])[1:]
	if strings.Join(gotFields, ",") != strings.Join(wantOnes, ",") {
		t.Fatal("ones listing disagrees with bit string")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{}, &out, &errOut); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent.csv"}, &out, &errOut); err == nil {
		t.Fatal("nonexistent input accepted")
	}
	path, _ := writeTestCSV(t)
	if err := run([]string{"-in", path, "-format", "base64"}, &out, &errOut); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run([]string{"-in", path, "-label", "NoSuchColumn"}, &out, &errOut); err == nil {
		t.Fatal("bad label column accepted")
	}
}
