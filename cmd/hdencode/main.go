// Command hdencode fits the paper's hyperdimensional encoders on a CSV
// dataset and dumps the record hypervectors.
//
// Usage:
//
//	hdencode -in data.csv -label Outcome [-binary col1,col2] [-dim 10000]
//	         [-seed N] [-format hex|bits|ones]
//
// Output: one line per record, "<label> <encoded vector>", where the
// vector format is packed hex (default), a 0/1 bit string, or the indices
// of set bits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"hdfe/internal/core"
	"hdfe/internal/dataset"
)

func main() {
	var (
		in     = flag.String("in", "", "input CSV path (required)")
		label  = flag.String("label", "label", "label column name")
		binary = flag.String("binary", "", "comma-separated binary column names")
		dim    = flag.Int("dim", 0, "hypervector dimensionality (0 = 10000)")
		seed   = flag.Uint64("seed", 42, "encoder seed")
		format = flag.String("format", "hex", "output format: hex, bits, ones")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "hdencode: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdencode: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	var binCols []string
	if *binary != "" {
		binCols = strings.Split(*binary, ",")
	}
	d, err := dataset.ReadCSV(f, *in, dataset.CSVOptions{
		LabelColumn:   *label,
		BinaryColumns: binCols,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdencode: %v\n", err)
		os.Exit(1)
	}
	if d.HasMissing() {
		fmt.Fprintln(os.Stderr, "hdencode: dataset has missing values; imputing class medians")
		d = dataset.ImputeClassMedian(d)
	}

	ext := core.NewExtractor(core.Options{Dim: *dim, Seed: *seed})
	if err := ext.FitDataset(d); err != nil {
		fmt.Fprintf(os.Stderr, "hdencode: %v\n", err)
		os.Exit(1)
	}
	vs := ext.Transform(d.X)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, v := range vs {
		switch *format {
		case "hex":
			fmt.Fprintf(w, "%d %s\n", d.Y[i], v.Hex())
		case "bits":
			fmt.Fprintf(w, "%d ", d.Y[i])
			for b := 0; b < v.Dim(); b++ {
				if v.Bit(b) {
					w.WriteByte('1')
				} else {
					w.WriteByte('0')
				}
			}
			w.WriteByte('\n')
		case "ones":
			fmt.Fprintf(w, "%d", d.Y[i])
			for _, idx := range v.Ones() {
				fmt.Fprintf(w, " %d", idx)
			}
			w.WriteByte('\n')
		default:
			fmt.Fprintf(os.Stderr, "hdencode: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
}
