// Command hdencode fits the paper's hyperdimensional encoders on a CSV
// dataset and dumps the record hypervectors.
//
// Usage:
//
//	hdencode -in data.csv -label Outcome [-binary col1,col2] [-dim 10000]
//	         [-seed N] [-format hex|bits|ones]
//
// Output: one line per record, "<label> <encoded vector>", where the
// vector format is packed hex (default), a 0/1 bit string, or the indices
// of set bits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hdfe/internal/core"
	"hdfe/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "hdencode: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable main: hypervector lines go to stdout, notices to
// stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hdencode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in     = fs.String("in", "", "input CSV path (required)")
		label  = fs.String("label", "label", "label column name")
		binary = fs.String("binary", "", "comma-separated binary column names")
		dim    = fs.Int("dim", 0, "hypervector dimensionality (0 = 10000)")
		seed   = fs.Uint64("seed", 42, "encoder seed")
		format = fs.String("format", "hex", "output format: hex, bits, ones")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	switch *format {
	case "hex", "bits", "ones":
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	var binCols []string
	if *binary != "" {
		binCols = strings.Split(*binary, ",")
	}
	d, err := dataset.ReadCSV(f, *in, dataset.CSVOptions{
		LabelColumn:   *label,
		BinaryColumns: binCols,
	})
	if err != nil {
		return err
	}
	if d.HasMissing() {
		fmt.Fprintln(stderr, "hdencode: dataset has missing values; imputing class medians")
		d = dataset.ImputeClassMedian(d)
	}

	ext := core.NewExtractor(core.Options{Dim: *dim, Seed: *seed})
	if err := ext.FitDataset(d); err != nil {
		return err
	}
	vs := ext.Transform(d.X)

	w := bufio.NewWriter(stdout)
	for i, v := range vs {
		switch *format {
		case "hex":
			fmt.Fprintf(w, "%d %s\n", d.Y[i], v.Hex())
		case "bits":
			fmt.Fprintf(w, "%d ", d.Y[i])
			for b := 0; b < v.Dim(); b++ {
				if v.Bit(b) {
					w.WriteByte('1')
				} else {
					w.WriteByte('0')
				}
			}
			w.WriteByte('\n')
		case "ones":
			fmt.Fprintf(w, "%d", d.Y[i])
			for _, idx := range v.Ones() {
				fmt.Fprintf(w, " %d", idx)
			}
			w.WriteByte('\n')
		}
	}
	return w.Flush()
}
