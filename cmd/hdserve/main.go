// Command hdserve serves a persisted hdfe deployment as a batched HTTP
// scoring service (see internal/serve).
//
// Usage:
//
//	hdserve -model dep.bin [-shadow cand.bin] [-addr :8080] [-name pima]
//	        [-max-batch 32] [-max-wait 2ms] [-timeout 5s] [-reject-missing]
//	        [-max-inflight 1024] [-queue-depth 0] [-retry-after 1s]
//	        [-chaos-spec ""] [-chaos-seed 1]
//	        [-reject-out-of-range] [-psi-warn 0.25] [-clamp-warn 0.01]
//	        [-score-window 4096] [-feedback-cap 4096]
//	        [-quality-window 1024] [-quality-tol 0.05]
//	        [-otlp-endpoint ""] [-trace-sample 0.01]
//	        [-slo-target 0.999] [-slo-latency-ms 250]
//	        [-prof-interval 30s] [-prof-ring 16] [-prof-cpu-ms 250]
//	        [-prof-baseline ""] [-watchdog=true]
//	        [-audit-dir ""] [-audit-max-bytes 8388608] [-audit-fsync none]
//	        [-audit-queue 4096] [-audit-ring 64]
//	        [-log-format text|json] [-log-level info] [-pprof]
//	hdserve -demo [-addr :8080] [-dim 10000] [-seed 42]
//	hdserve -write-demo dep.bin [-dim 10000] [-seed 42]
//
// -demo fits a deployment on the synthetic Pima M dataset in-process and
// serves it immediately — the quickest way to try the API. -write-demo
// writes that same deployment to a file and exits, producing a model
// artifact for -model. On SIGINT/SIGTERM the server drains in-flight
// requests before exiting.
//
// Model lifecycle: the boot model becomes registry version 1 and serves
// until replaced. SIGHUP re-reads the -model artifact and hot-swaps it
// with zero downtime (in-flight batches finish on the old model). POST
// /admin/models/load loads a new artifact as the active model or — with
// "shadow": true — as a shadow that re-scores the same validated
// batches off the hot path and reports disagreement-rate and
// score-delta metrics for canary comparison before promotion. -shadow
// installs such a shadow at boot; GET /v1/models reports the registry.
//
// Observability: every request is logged structurally (log/slog, text or
// JSON) with its trace ID, route, status, latency, and microbatch size.
// /metrics serves Prometheus text format, /metrics.json the legacy JSON
// snapshot, /debug/traces the recent and slowest per-stage request
// traces, and -pprof mounts net/http/pprof under /debug/pprof/.
//
// Distributed tracing: every scoring route parses an inbound W3C
// traceparent/tracestate, adopts a valid upstream trace ID (falling
// back to a generated one), and echoes traceparent on every response —
// including 429/504 sheds — so a gateway can correlate failures.
// -otlp-endpoint enables OTLP/JSON span export through a bounded lossy
// queue (telemetry never blocks scoring; overflow is counted in
// hdfe_trace_dropped_total). Export is tail-sampled: slow, error, shed,
// and shadow-disagreement traces are always kept, plus a -trace-sample
// fraction of ordinary traffic. Latency histogram buckets carry
// OpenMetrics exemplars referencing real trace IDs.
//
// Continuous profiling: the server profiles itself on a jittered
// -prof-interval cadence — CPU (a -prof-cpu-ms window), heap, goroutine,
// and rate-gated mutex/block profiles land in a bounded in-memory ring of
// -prof-ring gzipped pprof blobs, each tagged with its trigger and the
// runtime state at capture time. /debug/prof serves the ring index, the
// top-N CPU table with a delta against the baseline (-prof-baseline or
// the first capture since boot), and the runtime watchdog states;
// /debug/prof/{id} downloads a blob `go tool pprof` reads directly.
// Watchdogs (goroutine high-water/leak, heap-growth slope, GC-pause p99)
// fire edge-triggered warnings and capture out-of-cycle evidence
// profiles; -watchdog=false turns them off. hdfe_prof_* and
// hdfe_runtime_* metric families land in /metrics.
//
// Decision audit: -audit-dir enables the hash-chained audit trail
// (internal/obs/audit) — one tamper-evident wide event per
// score/shed/error/feedback/model-swap decision, written through a
// bounded lossy queue that never blocks scoring, with size-based
// segment rotation (-audit-max-bytes), a configurable fsync policy
// (-audit-fsync none|always|<duration>), and torn-tail recovery on
// restart. `?explain=k` on /v1/score adds the top-k per-feature
// explain contributions to the response and the audit event.
// /debug/audit serves writer state plus a recent-events ring;
// hdfe_audit_* families land in /metrics. Verify and replay the trail
// offline with the hdaudit tool.
//
// SLOs: -slo-target and -slo-latency-ms configure availability and
// latency objectives with multi-window burn rates (5m/1h fast, 6h/3d
// slow), served at /debug/slo, exported as hdfe_slo_* families, and
// logged on every edge-triggered burn-state change.
//
// Overload protection: -max-inflight bounds admitted records; excess
// load is shed with 429 + Retry-After before any encode work is spent
// (hdfe_shed_total counts rejections by reason). Clients can tighten the
// per-request budget with an X-Request-Deadline-Ms header; records past
// their deadline are abandoned in the batcher queue, never scored.
// -chaos-spec enables the deterministic fault-injection seam
// (internal/chaos) for soak and failure-drill testing — latency spikes,
// stage stalls, artifact-load failures, shadow-queue pressure.
//
// Model observability: the server monitors input drift (per-feature PSI
// against the training reference stored in the deployment), prediction
// drift (rolling score window), and delayed-label quality (POST
// ground-truth labels to /v1/feedback using the request_id from scoring
// responses). /debug/drift reports everything as JSON; hdfe_drift_* and
// hdfe_quality_* families land in /metrics; threshold crossings warn in
// the structured log.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hdfe/internal/chaos"
	"hdfe/internal/core"
	"hdfe/internal/obs"
	"hdfe/internal/obs/audit"
	"hdfe/internal/obs/prof"
	"hdfe/internal/registry"
	"hdfe/internal/serve"
	"hdfe/internal/synth"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "hdserve: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable main: it parses args, builds or loads the
// deployment, and serves until ctx is cancelled. The "serving" log line
// carries the bound listening address, so callers (and tests) can bind
// to port 0 and discover the real port from stdout.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hdserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		model         = fs.String("model", "", "deployment file written by core.Deployment.Save")
		shadowPath    = fs.String("shadow", "", "deployment file to install as the shadow (canary) model")
		name          = fs.String("name", "", "model name reported by /healthz (default: model file or \"demo\")")
		addr          = fs.String("addr", ":8080", "listen address")
		maxBatch      = fs.Int("max-batch", 32, "microbatch size cap")
		maxWait       = fs.Duration("max-wait", 2*time.Millisecond, "microbatch wait before scoring a partial batch")
		maxInFlight   = fs.Int("max-inflight", 1024, "admitted-record budget; excess load is shed with 429 (negative disables)")
		queueDepth    = fs.Int("queue-depth", 0, "batcher queue capacity (0 = max(4*max-batch, max-inflight))")
		retryAfter    = fs.Duration("retry-after", time.Second, "Retry-After hint on 429/503 shed responses")
		chaosSpec     = fs.String("chaos-spec", "", "fault-injection spec, e.g. \"batch:p=0.1,delay=5ms;load:err=disk gone\" (empty = chaos disabled)")
		chaosSeed     = fs.Uint64("chaos-seed", 1, "seed for the deterministic chaos injector")
		timeout       = fs.Duration("timeout", 5*time.Second, "per-request timeout")
		rejectMissing = fs.Bool("reject-missing", false, "reject null feature values instead of encoding them as missing")
		rejectRange   = fs.Bool("reject-out-of-range", false, "reject values outside the fitted range instead of clamp-and-warn")
		psiWarn       = fs.Float64("psi-warn", 0.25, "per-feature PSI threshold for input drift warnings")
		clampWarn     = fs.Float64("clamp-warn", 0.01, "out-of-range ratio threshold for clamp warnings")
		scoreWindow   = fs.Int("score-window", 4096, "rolling score window size for prediction drift")
		feedbackCap   = fs.Int("feedback-cap", 4096, "prediction ring capacity for /v1/feedback joins")
		qualityWindow = fs.Int("quality-window", 1024, "rolling labeled-outcome window for the quality canary")
		qualityTol    = fs.Float64("quality-tol", 0.05, "accuracy drop below the LOOCV baseline before the canary degrades")
		otlpEndpoint  = fs.String("otlp-endpoint", "", "OTLP/HTTP trace collector URL, e.g. http://localhost:4318/v1/traces (empty disables span export)")
		traceSample   = fs.Float64("trace-sample", 0.01, "head-sampling fraction of ordinary traces to export; slow/error/shed traces are always kept (negative: tail-only)")
		sloTarget     = fs.Float64("slo-target", 0.999, "SLO compliance target for the availability and latency objectives")
		sloLatencyMs  = fs.Int("slo-latency-ms", 250, "per-request latency objective in milliseconds for the SLO engine")
		logFormat     = fs.String("log-format", "text", "structured log format: text or json")
		logLevel      = fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
		pprofFlag     = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (context-aware profile/trace handlers)")
		profInterval  = fs.Duration("prof-interval", prof.DefaultInterval, "continuous-profiling capture cadence (0 disables scheduled captures)")
		profRing      = fs.Int("prof-ring", prof.DefaultRingSize, "profile capture ring capacity")
		profCPUMs     = fs.Int("prof-cpu-ms", int(prof.DefaultCPUDuration/time.Millisecond), "CPU profile sampling window per cycle, in milliseconds")
		profBaseline  = fs.String("prof-baseline", "", "committed pprof CPU profile to delta live captures against (default: first capture since boot)")
		watchdog      = fs.Bool("watchdog", true, "enable the goroutine/heap/GC-pause runtime watchdogs")
		auditDir      = fs.String("audit-dir", "", "directory for the hash-chained decision audit log (empty disables auditing)")
		auditMaxBytes = fs.Int64("audit-max-bytes", 8<<20, "audit segment size before rotation")
		auditFsync    = fs.String("audit-fsync", "none", "audit fsync policy: none, always, or an interval duration like 250ms")
		auditQueue    = fs.Int("audit-queue", 4096, "audit event queue capacity (overflow is dropped, never blocks scoring)")
		auditRing     = fs.Int("audit-ring", 64, "recent audit events kept for /debug/audit")
		demo          = fs.Bool("demo", false, "fit a synthetic Pima M deployment in-process and serve it")
		writeDemo     = fs.String("write-demo", "", "write the demo deployment to this file and exit")
		dim           = fs.Int("dim", 0, "demo hypervector dimensionality (0 = 10000)")
		seed          = fs.Uint64("seed", 42, "demo synthesis + encoder seed")
	)
	// -request-timeout is an alias for -timeout (the docs use both names;
	// the last one parsed wins).
	fs.DurationVar(timeout, "request-timeout", *timeout, "per-request timeout (alias for -timeout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	logger, err := obs.NewLogger(stdout, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	injector, err := chaos.Parse(*chaosSpec, *chaosSeed)
	if err != nil {
		return err
	}
	if injector != nil {
		logger.Warn("chaos injection enabled", "spec", injector.String(), "seed", *chaosSeed)
	}

	if *writeDemo != "" {
		dep, err := demoDeployment(*dim, *seed)
		if err != nil {
			return err
		}
		if err := dep.Save(*writeDemo); err != nil {
			return err
		}
		logger.Info("wrote demo deployment", "dim", dep.Extractor.Dim(), "path", *writeDemo)
		return nil
	}

	var (
		dep *core.Deployment
		sha string
	)
	modelName := *name
	switch {
	case *demo && *model != "":
		return errors.New("use either -demo or -model, not both")
	case *demo:
		var err error
		if dep, err = demoDeployment(*dim, *seed); err != nil {
			return err
		}
		if modelName == "" {
			modelName = "demo-pima-m"
		}
	case *model != "":
		var err error
		if dep, sha, err = registry.ReadFile(*model); err != nil {
			return err
		}
		if modelName == "" {
			modelName = *model
		}
	default:
		return errors.New("-model is required (or use -demo)")
	}

	var auditLog *audit.Log
	if *auditDir != "" {
		policy, every, err := audit.ParseFsync(*auditFsync)
		if err != nil {
			return err
		}
		auditLog, err = audit.Open(audit.Config{
			Dir:        *auditDir,
			MaxBytes:   *auditMaxBytes,
			QueueSize:  *auditQueue,
			Fsync:      policy,
			FsyncEvery: every,
			RingSize:   *auditRing,
			Chaos:      injector,
			Logger:     logger,
		})
		if err != nil {
			return err
		}
		logger.Info("audit trail enabled",
			"dir", *auditDir, "fsync", *auditFsync,
			"resumed_seq", auditLog.LastSeq())
	}

	srv := serve.New(dep, serve.Config{
		ModelName:        modelName,
		ModelPath:        *model,
		ModelSHA256:      sha,
		MaxBatch:         *maxBatch,
		MaxWait:          *maxWait,
		MaxInFlight:      *maxInFlight,
		QueueDepth:       *queueDepth,
		RetryAfter:       *retryAfter,
		Chaos:            injector,
		RequestTimeout:   *timeout,
		RejectMissing:    *rejectMissing,
		RejectOutOfRange: *rejectRange,
		PSIWarn:          *psiWarn,
		ClampWarn:        *clampWarn,
		ScoreWindow:      *scoreWindow,
		FeedbackCapacity: *feedbackCap,
		QualityWindow:    *qualityWindow,
		QualityTolerance: *qualityTol,
		OTLPEndpoint:     *otlpEndpoint,
		TraceSample:      *traceSample,
		SLOTarget:        *sloTarget,
		SLOLatency:       time.Duration(*sloLatencyMs) * time.Millisecond,
		Logger:           logger,
		EnablePprof:      *pprofFlag,
		Prof:             profConfig(*profInterval, *profRing, *profCPUMs, *profBaseline, *watchdog),
		Audit:            auditLog,
	})
	if *shadowPath != "" {
		info, err := srv.LoadShadow(*shadowPath, "")
		if err != nil {
			return err
		}
		logger.Info("shadow model loaded",
			"model", info.Name, "model_version", info.Version, "sha256", info.SHA256)
	}

	// SIGHUP hot-swaps the active model by re-reading its backing
	// artifact. A failed reload (missing file, corrupt artifact, schema
	// mismatch, or an in-process -demo model) is logged and the current
	// model keeps serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				info, err := srv.ReloadModel()
				if err != nil {
					logger.Error("model reload failed", "err", err)
					continue
				}
				logger.Info("model reloaded",
					"model", info.Name, "model_version", info.Version, "sha256", info.SHA256)
			}
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("serving",
		"model", modelName,
		"dim", dep.Extractor.Dim(),
		"features", dep.Extractor.Codebook().NumFeatures(),
		"addr", ln.Addr().String(),
		"pprof", *pprofFlag)
	err = srv.Serve(ctx, ln)
	logger.Info("drained and stopped", "summary", srv.Metrics().Snapshot().String())
	return err
}

// profConfig maps the -prof-* and -watchdog flags onto a prof.Config.
// On the flag surface 0 means "off" (the natural CLI reading); in
// prof.Config 0 means "default" and negative means off, so the zero
// values are translated here.
func profConfig(interval time.Duration, ring, cpuMs int, baseline string, watchdog bool) prof.Config {
	cfg := prof.Config{
		Interval:     interval,
		CPUDuration:  time.Duration(cpuMs) * time.Millisecond,
		RingSize:     ring,
		BaselinePath: baseline,
	}
	if interval <= 0 {
		cfg.Interval = -1
	}
	cfg.Watchdog.Disable = !watchdog
	return cfg
}

// demoDeployment fits the serving demo model: the synthetic Pima M
// dataset through the paper's encoder configuration.
func demoDeployment(dim int, seed uint64) (*core.Deployment, error) {
	d := synth.PimaM(seed)
	return core.BuildDeployment(core.SpecsFor(d.Features), d.X, d.Y, core.Options{Dim: dim, Seed: seed})
}
