// Command hdserve serves a persisted hdfe deployment as a batched HTTP
// scoring service (see internal/serve).
//
// Usage:
//
//	hdserve -model dep.bin [-addr :8080] [-name pima] [-max-batch 32]
//	        [-max-wait 2ms] [-timeout 5s] [-reject-missing]
//	hdserve -demo [-addr :8080] [-dim 10000] [-seed 42]
//	hdserve -write-demo dep.bin [-dim 10000] [-seed 42]
//
// -demo fits a deployment on the synthetic Pima M dataset in-process and
// serves it immediately — the quickest way to try the API. -write-demo
// writes that same deployment to a file and exits, producing a model
// artifact for -model. On SIGINT/SIGTERM the server drains in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hdfe/internal/core"
	"hdfe/internal/serve"
	"hdfe/internal/synth"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "hdserve: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable main: it parses args, builds or loads the
// deployment, and serves until ctx is cancelled. The listening address is
// printed to stdout once the socket is open, so callers (and tests) can
// bind to port 0 and discover the real port.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hdserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		model         = fs.String("model", "", "deployment file written by core.Deployment.Save")
		name          = fs.String("name", "", "model name reported by /healthz (default: model file or \"demo\")")
		addr          = fs.String("addr", ":8080", "listen address")
		maxBatch      = fs.Int("max-batch", 32, "microbatch size cap")
		maxWait       = fs.Duration("max-wait", 2*time.Millisecond, "microbatch wait before scoring a partial batch")
		timeout       = fs.Duration("timeout", 5*time.Second, "per-request timeout")
		rejectMissing = fs.Bool("reject-missing", false, "reject null feature values instead of encoding them as missing")
		demo          = fs.Bool("demo", false, "fit a synthetic Pima M deployment in-process and serve it")
		writeDemo     = fs.String("write-demo", "", "write the demo deployment to this file and exit")
		dim           = fs.Int("dim", 0, "demo hypervector dimensionality (0 = 10000)")
		seed          = fs.Uint64("seed", 42, "demo synthesis + encoder seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *writeDemo != "" {
		dep, err := demoDeployment(*dim, *seed)
		if err != nil {
			return err
		}
		if err := dep.Save(*writeDemo); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "hdserve: wrote demo deployment (dim %d) to %s\n", dep.Extractor.Dim(), *writeDemo)
		return nil
	}

	var dep *core.Deployment
	modelName := *name
	switch {
	case *demo && *model != "":
		return errors.New("use either -demo or -model, not both")
	case *demo:
		var err error
		if dep, err = demoDeployment(*dim, *seed); err != nil {
			return err
		}
		if modelName == "" {
			modelName = "demo-pima-m"
		}
	case *model != "":
		var err error
		if dep, err = core.LoadDeployment(*model); err != nil {
			return err
		}
		if modelName == "" {
			modelName = *model
		}
	default:
		return errors.New("-model is required (or use -demo)")
	}

	srv := serve.New(dep, serve.Config{
		ModelName:      modelName,
		MaxBatch:       *maxBatch,
		MaxWait:        *maxWait,
		RequestTimeout: *timeout,
		RejectMissing:  *rejectMissing,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "hdserve: serving %s (dim %d, %d features) on %s\n",
		modelName, dep.Extractor.Dim(), dep.Extractor.Codebook().NumFeatures(), ln.Addr())
	err = srv.Serve(ctx, ln)
	fmt.Fprintf(stdout, "hdserve: drained and stopped: %s\n", srv.Metrics().Snapshot())
	return err
}

// demoDeployment fits the serving demo model: the synthetic Pima M
// dataset through the paper's encoder configuration.
func demoDeployment(dim int, seed uint64) (*core.Deployment, error) {
	d := synth.PimaM(seed)
	return core.BuildDeployment(core.SpecsFor(d.Features), d.X, d.Y, core.Options{Dim: dim, Seed: seed})
}
