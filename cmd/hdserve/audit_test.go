package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"hdfe/internal/obs/audit"
	"hdfe/internal/registry"
)

// TestRunAuditTrail boots hdserve with -audit-dir, scores traffic, shuts
// down, and then verifies and replays the trail offline — the same loop
// scripts/audit_smoke.sh runs against the installed binaries.
func TestRunAuditTrail(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "dep.bin")
	auditDir := filepath.Join(dir, "audit")
	var out, errOut bytes.Buffer
	if err := run(context.Background(), []string{"-write-demo", model, "-dim", "128"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stdout := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-model", model, "-addr", "127.0.0.1:0",
			"-audit-dir", auditDir, "-audit-fsync", "50ms", "-max-wait", "1ms"}, stdout, &errOut)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := addrRe.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; stdout %q", stdout.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !strings.Contains(stdout.String(), "audit trail enabled") {
		t.Fatalf("no audit-enabled log line; stdout %q", stdout.String())
	}

	wantBits := map[string]uint64{}
	for i := 0; i < 5; i++ {
		resp, err := http.Post("http://"+addr+"/v1/score", "application/json",
			strings.NewReader(`{"features":[2,120,70,25,100,30.5,0.4,40]}`))
		if err != nil {
			t.Fatal(err)
		}
		var sr struct {
			RequestID string  `json:"request_id"`
			Score     float64 `json:"score"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("score status %d", resp.StatusCode)
		}
		wantBits[sr.RequestID] = math.Float64bits(sr.Score)
	}

	// The exposition must carry the audit families.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	prom.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"hdfe_audit_events_total", "hdfe_audit_chain_length", "hdfe_audit_dropped_total"} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after context cancellation")
	}

	res, err := audit.VerifyDir(auditDir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if res.Outcomes["scored"] != len(wantBits) {
		t.Fatalf("%d scored events, want %d (census %v)", res.Outcomes["scored"], len(wantBits), res.Outcomes)
	}
	dep, sha, err := registry.ReadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := audit.Replay(auditDir, dep, sha)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Replayed != len(wantBits) || rr.Matched != rr.Replayed {
		t.Fatalf("replay: replayed %d matched %d, want %d", rr.Replayed, rr.Matched, len(wantBits))
	}

	// A second boot on the same directory must resume the chain, not
	// restart it.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	stdout2 := &syncBuffer{}
	done2 := make(chan error, 1)
	go func() {
		done2 <- run(ctx2, []string{"-model", model, "-addr", "127.0.0.1:0",
			"-audit-dir", auditDir, "-max-wait", "1ms"}, stdout2, &errOut)
	}()
	deadline = time.Now().Add(10 * time.Second)
	for !strings.Contains(stdout2.String(), "audit trail enabled") {
		if time.Now().After(deadline) {
			t.Fatalf("second boot never enabled audit; stdout %q", stdout2.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(stdout2.String(), "resumed_seq="+strconv.FormatUint(res.LastSeq, 10)) {
		t.Errorf("second boot did not resume at seq %d; stdout %q", res.LastSeq, stdout2.String())
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("second run returned %v", err)
	}
}

func TestRunAuditFlagErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	ctx := context.Background()
	for _, args := range [][]string{
		{"-demo", "-audit-dir", "x", "-audit-fsync", "sometimes"},
		{"-demo", "-audit-dir", "x", "-audit-fsync", "-1s"},
	} {
		if err := run(ctx, args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
