package main

import (
	"bytes"
	"context"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRunOverloadFlags drives the overload-protection flags through the
// real binary entrypoint: -max-inflight 1 plus a -chaos-spec batch stall
// forces concurrent clients to split into admitted requests and 429s
// carrying Retry-After, with the sheds visible in /metrics.
func TestRunOverloadFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stdout := &syncBuffer{}
	var errOut bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-demo", "-dim", "128", "-addr", "127.0.0.1:0",
			"-max-inflight", "1", "-retry-after", "2s",
			"-chaos-spec", "batch:p=1,delay=250ms", "-chaos-seed", "7",
			"-request-timeout", "5s"}, stdout, &errOut)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := addrRe.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; stdout %q stderr %q", stdout.String(), errOut.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !strings.Contains(stdout.String(), "chaos injection enabled") {
		t.Fatalf("-chaos-spec did not log the chaos warning: %q", stdout.String())
	}

	// Four concurrent clients against a 1-record budget held ~250ms by
	// the injected stall: at least one admitted (200), at least one shed
	// (429 with a whole-second Retry-After >= 1).
	const clients = 4
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		ok, shed int
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post("http://"+addr+"/v1/score", "application/json",
				strings.NewReader(`{"features":[2,120,70,25,100,30.5,0.4,40]}`))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests:
				shed++
				if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
					t.Errorf("429 Retry-After %q, want integer seconds >= 1", resp.Header.Get("Retry-After"))
				}
			default:
				t.Errorf("status %d under overload, want 200 or 429", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if ok == 0 || shed == 0 {
		t.Fatalf("%d accepted / %d shed of %d clients; want both nonzero", ok, shed, clients)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	metrics := body.String()
	found := false
	for _, line := range strings.Split(metrics, "\n") {
		if rest, ok := strings.CutPrefix(line, `hdfe_shed_total{reason="queue_full"} `); ok {
			n, err := strconv.Atoi(rest)
			if err != nil || n < shed {
				t.Errorf("hdfe_shed_total{queue_full} = %q, clients saw %d rejections", rest, shed)
			}
			found = true
		}
	}
	if !found {
		t.Error("hdfe_shed_total{reason=\"queue_full\"} missing from /metrics")
	}
	if !strings.Contains(metrics, "hdserve_inflight_records") {
		t.Error("hdserve_inflight_records missing from /metrics")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after context cancellation")
	}
}

// TestRunChaosSpecErrors pins the flag contract: a malformed -chaos-spec
// fails startup with a parse error instead of silently serving without
// injection.
func TestRunChaosSpecErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run(context.Background(), []string{"-demo", "-dim", "128",
		"-chaos-spec", "bogus:p=1"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "unknown injection point") {
		t.Fatalf("bad -chaos-spec: err %v, want unknown-injection-point parse error", err)
	}
}
