package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"hdfe/internal/core"
	"hdfe/internal/synth"
)

// addrJSONRe pulls the bound address out of the JSON "serving" log line.
var addrJSONRe = regexp.MustCompile(`"addr":"([^"]+:\d+)"`)

// TestDriftDetectionEndToEnd drives the whole model-observability loop
// through a real server: write a model artifact, serve it, send a
// cohort whose glucose shifted +2σ, and assert the shift is visible in
// /debug/drift (PSI over threshold) and in the structured log. Then
// close the loop with delayed labels through /v1/feedback and check the
// rolling accuracy agrees with offline scoring of the same rows.
func TestDriftDetectionEndToEnd(t *testing.T) {
	model := filepath.Join(t.TempDir(), "dep.bin")
	var out, errOut bytes.Buffer
	if err := run(context.Background(), []string{"-write-demo", model, "-dim", "512", "-seed", "42"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stdout := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-model", model, "-addr", "127.0.0.1:0",
			"-log-format", "json"}, stdout, &errOut)
	}()
	jsonAddrRe := addrJSONRe
	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for addr == "" {
		if m := jsonAddrRe.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; stdout %q", stdout.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Build the shifted cohort: the training data with glucose moved up
	// by two training standard deviations.
	d := synth.PimaM(42)
	const glucoseCol = 1
	var sum, sumSq float64
	for _, row := range d.X {
		sum += row[glucoseCol]
		sumSq += row[glucoseCol] * row[glucoseCol]
	}
	n := float64(len(d.X))
	mean := sum / n
	sigma := math.Sqrt(sumSq/n - mean*mean)
	if sigma <= 0 {
		t.Fatalf("degenerate glucose sigma %v", sigma)
	}
	shifted := make([][]float64, len(d.X))
	for i, row := range d.X {
		r := append([]float64(nil), row...)
		r[glucoseCol] += 2 * sigma
		shifted[i] = r
	}

	body, err := json.Marshal(map[string]any{"records": shifted})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/v1/score/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var batch struct {
		RequestIDs  []string  `json:"request_ids"`
		Scores      []float64 `json:"scores"`
		Predictions []int     `json:"predictions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if len(batch.RequestIDs) != len(d.X) || len(batch.Predictions) != len(d.X) {
		t.Fatalf("batch response sizes ids=%d preds=%d, want %d",
			len(batch.RequestIDs), len(batch.Predictions), len(d.X))
	}

	rep := fetchDriftReport(t, addr)
	var glucose *featureDriftView
	for i := range rep.Features {
		if rep.Features[i].Feature == "Glucose" {
			glucose = &rep.Features[i]
		}
	}
	if glucose == nil {
		t.Fatalf("no Glucose feature in drift report: %+v", rep.Features)
	}
	if glucose.PSI < 0.25 {
		t.Errorf("glucose PSI %v after a +2 sigma shift, want >= 0.25", glucose.PSI)
	}
	// The /debug/drift call above ran the threshold evaluation, so the
	// warning must already be in the structured log.
	if !strings.Contains(stdout.String(), `"msg":"input drift detected"`) {
		t.Errorf("no drift warning in the structured log; stdout %q", stdout.String())
	}

	// Close the delayed-label loop: the true outcomes are the dataset
	// labels, keyed by the request IDs the batch response returned.
	items := make([]map[string]any, len(batch.RequestIDs))
	for i, id := range batch.RequestIDs {
		items[i] = map[string]any{"request_id": id, "label": d.Y[i]}
	}
	body, err = json.Marshal(map[string]any{"items": items})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post("http://"+addr+"/v1/feedback", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var fb struct {
		Matched int `json:"matched"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || fb.Matched != len(d.X) {
		t.Fatalf("feedback status %d matched %d, want %d", resp.StatusCode, fb.Matched, len(d.X))
	}

	// Rolling accuracy must agree with offline scoring of the identical
	// rows through the same model file.
	dep, err := core.LoadDeployment(model)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, row := range shifted {
		if dep.Predict(row) == d.Y[i] {
			correct++
		}
	}
	offline := float64(correct) / float64(len(shifted))

	rep = fetchDriftReport(t, addr)
	if rep.Quality.WindowLabels != uint64(len(d.X)) {
		t.Fatalf("window labels %d, want %d (quality window must hold the cohort)",
			rep.Quality.WindowLabels, len(d.X))
	}
	if rep.Quality.RollingAccuracy == nil {
		t.Fatal("rolling accuracy null after labels")
	}
	if diff := math.Abs(*rep.Quality.RollingAccuracy - offline); diff > 0.001 {
		t.Errorf("rolling accuracy %v vs offline %v (diff %v, want <= 0.001)",
			*rep.Quality.RollingAccuracy, offline, diff)
	}
	if rep.Quality.Canary == "" || rep.Quality.Canary == "disabled" {
		t.Errorf("canary %q, want an active verdict", rep.Quality.Canary)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after context cancellation")
	}
}

// featureDriftView mirrors the /debug/drift per-feature block.
type featureDriftView struct {
	Feature    string  `json:"feature"`
	PSI        float64 `json:"psi"`
	ClampRatio float64 `json:"clamp_ratio"`
	Above      uint64  `json:"above"`
}

// driftReportView mirrors the /debug/drift body (floats that can be
// "no data yet" arrive as null, hence the pointers).
type driftReportView struct {
	InputDriftEnabled bool               `json:"input_drift_enabled"`
	RowsObserved      uint64             `json:"rows_observed"`
	Features          []featureDriftView `json:"features"`
	Quality           struct {
		WindowLabels    uint64   `json:"window_labels"`
		RollingAccuracy *float64 `json:"rolling_accuracy"`
		Canary          string   `json:"canary"`
	} `json:"quality"`
}

func fetchDriftReport(t *testing.T, addr string) driftReportView {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/drift", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/drift status %d", resp.StatusCode)
	}
	var rep driftReportView
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}
