package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer lets the test read run()'s stdout while the server goroutine
// is still writing to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// The "serving" slog line carries the bound address as addr=HOST:PORT.
var addrRe = regexp.MustCompile(`addr=(\S+:\d+)`)

func TestRunWriteDemoAndServe(t *testing.T) {
	model := filepath.Join(t.TempDir(), "dep.bin")
	var out, errOut bytes.Buffer
	if err := run(context.Background(), []string{"-write-demo", model, "-dim", "256"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote demo deployment") || !strings.Contains(out.String(), "dim=256") {
		t.Fatalf("write-demo output: %q", out.String())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stdout := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-model", model, "-addr", "127.0.0.1:0", "-name", "smoke"}, stdout, &errOut)
	}()

	// The listening line carries the real port (we bound port 0).
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := addrRe.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; stdout %q", stdout.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
		Model  string `json:"model"`
		Dim    int    `json:"dim"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Model != "smoke" || h.Dim != 256 {
		t.Fatalf("healthz %+v", h)
	}

	body := strings.NewReader(`{"features":[2,120,70,25,100,30.5,0.4,40]}`)
	resp, err = http.Post("http://"+addr+"/v1/score", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Score float64 `json:"score"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sr.Score < 0 || sr.Score > 1 {
		t.Fatalf("score status %d value %v", resp.StatusCode, sr.Score)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after context cancellation")
	}
	if !strings.Contains(stdout.String(), "drained and stopped") {
		t.Fatalf("shutdown line missing from stdout: %q", stdout.String())
	}
}

// TestRunJSONLogsAndPprof drives the observability flags end to end:
// -log-format json emits machine-parseable request logs with trace IDs,
// and -pprof mounts the profiling handlers.
func TestRunJSONLogsAndPprof(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stdout := &syncBuffer{}
	var errOut bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-demo", "-dim", "128", "-addr", "127.0.0.1:0",
			"-log-format", "json", "-pprof"}, stdout, &errOut)
	}()

	jsonAddrRe := regexp.MustCompile(`"addr":"([^"]+:\d+)"`)
	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for addr == "" {
		if m := jsonAddrRe.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; stdout %q", stdout.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	body := strings.NewReader(`{"features":[2,120,70,25,100,30.5,0.4,40]}`)
	resp, err := http.Post("http://"+addr+"/v1/score", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score status %d", resp.StatusCode)
	}

	// The request log line is JSON with trace_id/route/status/latency.
	logDeadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(stdout.String(), `"msg":"request"`) {
		if time.Now().After(logDeadline) {
			t.Fatalf("no request log line; stdout %q", stdout.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	var reqLine map[string]any
	for _, line := range strings.Split(stdout.String(), "\n") {
		if strings.Contains(line, `"msg":"request"`) {
			if err := json.Unmarshal([]byte(line), &reqLine); err != nil {
				t.Fatalf("request log line %q: %v", line, err)
			}
			break
		}
	}
	if reqLine["route"] != "score" || reqLine["trace_id"] == nil || reqLine["status"] != float64(200) {
		t.Errorf("request log %v", reqLine)
	}

	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d with -pprof", resp.StatusCode)
	}

	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), "hdserve_stage_duration_seconds_bucket") {
		t.Errorf("/metrics missing stage histograms:\n%.400s", prom)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after context cancellation")
	}
}

// TestRunModelLifecycle drives the lifecycle surface end to end: boot
// with -model and -shadow, hot-swap via SIGHUP, promote a different
// artifact through /admin/models/load, and watch /v1/models and the
// model_version metric labels track every step.
func TestRunModelLifecycle(t *testing.T) {
	dir := t.TempDir()
	modelA := filepath.Join(dir, "a.bin")
	modelB := filepath.Join(dir, "b.bin")
	var out, errOut bytes.Buffer
	if err := run(context.Background(), []string{"-write-demo", modelA, "-dim", "128", "-seed", "42"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-write-demo", modelB, "-dim", "128", "-seed", "43"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stdout := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-model", modelA, "-shadow", modelB, "-name", "boot",
			"-addr", "127.0.0.1:0", "-max-wait", "1ms"}, stdout, &errOut)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := addrRe.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; stdout %q", stdout.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	type info struct {
		Version uint64 `json:"version"`
		Name    string `json:"name"`
		Path    string `json:"path"`
		SHA256  string `json:"sha256"`
	}
	type models struct {
		Active info   `json:"active"`
		Shadow *info  `json:"shadow"`
		Swaps  uint64 `json:"swaps"`
		Loaded []info `json:"loaded"`
	}
	getModels := func() models {
		t.Helper()
		resp, err := http.Get("http://" + addr + "/v1/models")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m models
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	m := getModels()
	if m.Active.Version != 1 || m.Active.Name != "boot" || m.Active.Path != modelA || len(m.Active.SHA256) != 64 {
		t.Fatalf("boot active %+v", m.Active)
	}
	if m.Shadow == nil || m.Shadow.Version != 2 || m.Shadow.Path != modelB {
		t.Fatalf("boot shadow %+v", m.Shadow)
	}

	// SIGHUP re-reads -model and promotes the fresh copy as version 3.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for getModels().Active.Version != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("SIGHUP reload never landed; registry %+v stdout %q", getModels(), stdout.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	m = getModels()
	if m.Active.Path != modelA || m.Swaps != 1 {
		t.Fatalf("after SIGHUP: %+v", m)
	}
	if !strings.Contains(stdout.String(), "model reloaded") {
		t.Errorf("no reload log line; stdout %q", stdout.String())
	}

	// The admin endpoint promotes a different artifact as version 4.
	resp, err := http.Post("http://"+addr+"/admin/models/load", "application/json",
		strings.NewReader(`{"path":`+strconv.Quote(modelB)+`,"name":"b"}`))
	if err != nil {
		t.Fatal(err)
	}
	loadBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin load status %d body %s", resp.StatusCode, loadBody)
	}
	m = getModels()
	if m.Active.Version != 4 || m.Active.Name != "b" || m.Swaps != 2 || len(m.Loaded) != 4 {
		t.Fatalf("after admin load: %+v", m)
	}

	// Scoring now attributes to version 4, and the exposition carries the
	// model_version label plus the swap counter.
	resp, err = http.Post("http://"+addr+"/v1/score", "application/json",
		strings.NewReader(`{"features":[2,120,70,25,100,30.5,0.4,40]}`))
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		ModelVersion uint64 `json:"model_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.ModelVersion != 4 {
		t.Errorf("score attributed to version %d, want 4", sr.ModelVersion)
	}
	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"hdserve_model_swaps_total 2",
		`model_version="4"`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after context cancellation")
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	ctx := context.Background()
	cases := [][]string{
		{},                              // no model
		{"-model", "/nonexistent"},      // unreadable model
		{"-demo", "-model", "x"},        // conflicting sources
		{"-bogus"},                      // unknown flag
		{"-demo", "positional-arg"},     // stray positional
		{"-demo", "-log-format", "xml"}, // unknown log format
		{"-demo", "-log-level", "loud"}, // unknown log level
	}
	for _, args := range cases {
		if err := run(ctx, args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	// A corrupt model file must fail cleanly, not panic.
	bad := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(bad, []byte("not a deployment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, []string{"-model", bad}, &out, &errOut); err == nil {
		t.Error("corrupt model accepted")
	}
}
