package main

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hdfe/internal/core"
	"hdfe/internal/obs/audit"
	"hdfe/internal/registry"
	"hdfe/internal/synth"
)

// fixture builds a saved deployment artifact plus an audit directory
// holding events scored by exactly that artifact.
func fixture(t *testing.T) (dir, model string) {
	t.Helper()
	root := t.TempDir()
	d := synth.PimaM(7)
	dep, err := core.BuildDeployment(core.SpecsFor(d.Features), d.X, d.Y, core.Options{Dim: 256, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	model = filepath.Join(root, "model.bin")
	if err := dep.Save(model); err != nil {
		t.Fatal(err)
	}
	// Score through the artifact as read back from disk — the exact
	// bytes replay will load — and record its content sha.
	rdep, sha, err := registry.ReadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	dir = filepath.Join(root, "audit")
	l, err := audit.Open(audit.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		row := d.X[i]
		score := rdep.Score(row)
		l.Enqueue(audit.Event{
			Route: "score", Outcome: audit.OutcomeScored,
			RequestID: fmt.Sprintf("req-%d", i), ModelVersion: 1, ModelSHA256: sha,
			Inputs: audit.Inputs(row), InputsSHA256: audit.InputsDigest(row),
			Score: score, ScoreBits: math.Float64bits(score), Prediction: pred(score),
		})
	}
	l.Enqueue(audit.Event{Route: "score", Outcome: audit.OutcomeShed, Reason: "queue_full"})
	l.Close()
	return dir, model
}

func pred(score float64) int {
	if score >= 0.5 {
		return 1
	}
	return 0
}

func runT(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String() + errb.String(), err
}

func TestVerifyAndReplayCleanTrail(t *testing.T) {
	dir, model := fixture(t)

	out, err := runT(t, "verify", "-dir", dir)
	if err != nil {
		t.Fatalf("verify: %v\n%s", err, out)
	}
	if !strings.Contains(out, "audit chain OK: 13 events") || !strings.Contains(out, "scored=12") || !strings.Contains(out, "shed=1") {
		t.Fatalf("verify output:\n%s", out)
	}

	out, err = runT(t, "replay", "-dir", dir, "-model", model)
	if err != nil {
		t.Fatalf("replay: %v\n%s", err, out)
	}
	if !strings.Contains(out, "replayed 12 scored events") || !strings.Contains(out, "matched 12, diverged 0") {
		t.Fatalf("replay output:\n%s", out)
	}
}

func TestVerifyFailsOnTamperedTrail(t *testing.T) {
	dir, _ := fixture(t)
	seg := filepath.Join(dir, "audit-000001.jsonl")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the file.
	data[len(data)/2] ^= 1
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runT(t, "verify", "-dir", dir)
	if err == nil {
		t.Fatalf("verify passed a tampered trail:\n%s", out)
	}
	if !strings.Contains(err.Error(), "FAILED") {
		t.Fatalf("verify error %q does not say FAILED", err)
	}
}

func TestReplayDetectsDivergence(t *testing.T) {
	dir, model := fixture(t)
	// A different artifact (different seed) scores differently; under
	// -all its divergences are informational, under attribution they are
	// skipped (sha mismatch), so replay stays clean.
	d := synth.PimaM(7)
	other, err := core.BuildDeployment(core.SpecsFor(d.Features), d.X, d.Y, core.Options{Dim: 256, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	otherPath := filepath.Join(t.TempDir(), "other.bin")
	if err := other.Save(otherPath); err != nil {
		t.Fatal(err)
	}

	out, err := runT(t, "replay", "-dir", dir, "-model", otherPath)
	if err != nil {
		t.Fatalf("attributed replay against a foreign model must skip, not fail: %v\n%s", err, out)
	}
	if !strings.Contains(out, "other model 12") {
		t.Fatalf("replay output:\n%s", out)
	}

	out, err = runT(t, "replay", "-dir", dir, "-model", otherPath, "-all")
	if err != nil {
		t.Fatalf("-all replay is informational: %v\n%s", err, out)
	}
	if !strings.Contains(out, "diverged 12") || !strings.Contains(out, "expected under -all") {
		t.Fatalf("-all replay output:\n%s", out)
	}

	// Sanity: the original model still replays clean.
	if out, err := runT(t, "replay", "-dir", dir, "-model", model); err != nil {
		t.Fatalf("clean replay: %v\n%s", err, out)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"verify"},
		{"replay"},
		{"replay", "-dir", "x"},
	} {
		if _, err := runT(t, args...); err == nil {
			t.Errorf("run(%v): no error", args)
		}
	}
}
