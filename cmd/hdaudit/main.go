// Command hdaudit verifies and replays the hash-chained decision audit
// trail written by hdserve (see internal/obs/audit).
//
// Usage:
//
//	hdaudit verify -dir audit/
//	hdaudit replay -dir audit/ -model dep.bin [-all]
//
// verify walks the chain across every segment — per-line hashes,
// prev-hash linkage, contiguous sequence numbers — and fails on the
// first break, printing the segment and line it happened on. A clean
// walk prints the chain head and the event census.
//
// replay re-scores every audited decision against a deployment artifact
// and asserts Float64bits-identical scores. Events scored by a
// different artifact (their model_sha256 does not match -model's bytes)
// are skipped and counted, so replay stays well-defined across model
// hot-swaps: each decision is verified against exactly the model that
// made it. -all replays every scored event regardless of attribution —
// useful for asking "would the new model have decided differently?",
// where divergences are the interesting output, not a failure of the
// trail. Any divergence under the default attribution is a hard error:
// either the artifact is not the one that served, or the log was
// altered in a way the hash chain cannot see (it protects integrity of
// what was written, not agreement with a model).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"hdfe/internal/obs/audit"
	"hdfe/internal/registry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "hdaudit: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable main.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return errors.New("usage: hdaudit <verify|replay> [flags]")
	}
	switch args[0] {
	case "verify":
		return runVerify(args[1:], stdout, stderr)
	case "replay":
		return runReplay(args[1:], stdout, stderr)
	default:
		return fmt.Errorf("unknown subcommand %q (want verify or replay)", args[0])
	}
}

func runVerify(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hdaudit verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "audit log directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("verify: -dir is required")
	}
	res, err := audit.VerifyDir(*dir)
	if err != nil {
		return fmt.Errorf("chain verification FAILED after %d good events: %w", res.Events, err)
	}
	fmt.Fprintf(stdout, "audit chain OK: %d events across %d segments, head %s\n",
		res.Events, res.Segments, shortHash(res.Head))
	fmt.Fprintf(stdout, "  outcomes: %s\n", census(res.Outcomes))
	return nil
}

func runReplay(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hdaudit replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "audit log directory (required)")
	model := fs.String("model", "", "deployment artifact to replay against (required)")
	all := fs.Bool("all", false, "replay every scored event, not just those attributed to -model's sha256")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *model == "" {
		return errors.New("replay: -dir and -model are required")
	}
	dep, sha, err := registry.ReadFile(*model)
	if err != nil {
		return err
	}
	want := sha
	if *all {
		want = ""
	}
	res, err := audit.Replay(*dir, dep, want)
	if err != nil {
		return fmt.Errorf("chain verification FAILED during replay: %w", err)
	}
	fmt.Fprintf(stdout, "replayed %d scored events against %s (sha256 %s)\n",
		res.Replayed, *model, shortHash(sha))
	fmt.Fprintf(stdout, "  matched %d, diverged %d; skipped: other model %d, no inputs %d, digest mismatch %d\n",
		res.Matched, len(res.Divergences), res.SkippedModel, res.SkippedInput, res.DigestMismatch)
	if res.DigestMismatch > 0 {
		return fmt.Errorf("%d events carry inputs that fail their own digest", res.DigestMismatch)
	}
	if n := len(res.Divergences); n > 0 {
		for i, d := range res.Divergences {
			if i == 10 {
				fmt.Fprintf(stdout, "  ... and %d more\n", n-10)
				break
			}
			fmt.Fprintf(stdout, "  seq %d (request %s, model v%d sha %s): audited %.17g (bits %#x), replayed %.17g (bits %#x)\n",
				d.Seq, d.RequestID, d.ModelVersion, shortHash(d.ModelSHA256), d.Want, d.WantBits, d.Got, d.GotBits)
		}
		if *all {
			fmt.Fprintf(stdout, "  (divergences include events attributed to other models; expected under -all)\n")
			return nil
		}
		return fmt.Errorf("%d of %d replayed scores diverged", n, res.Replayed)
	}
	return nil
}

// census renders an outcome→count map deterministically.
func census(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return "(none)"
	}
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", k, m[k])
	}
	return out
}

func shortHash(h string) string {
	if h == "" {
		return "(genesis)"
	}
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
